//===-- vm/Scheduler.cpp - Smalltalk Process scheduling ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Scheduler.h"

#include <chrono>

#include "obs/Profiler.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"

using namespace mst;

Scheduler::Scheduler(ObjectModel &Om, Safepoint &Sp)
    : Om(Om), Sp(Sp), Lock(Om.memory().config().MpSupport, "sched") {}

/// --- Smalltalk linked-list plumbing (Lock held) -------------------------

void Scheduler::llAppend(Oop List, Oop Proc) {
  ObjectMemory &OM = Om.memory();
  Oop Nil = Om.nil();
  OM.storePointer(Proc, ProcNextLink, Nil);
  OM.storePointer(Proc, ProcMyList, List);
  Oop Last = ObjectMemory::fetchPointer(List, LlLastLink);
  if (Last == Nil) {
    OM.storePointer(List, LlFirstLink, Proc);
    OM.storePointer(List, LlLastLink, Proc);
    return;
  }
  OM.storePointer(Last, ProcNextLink, Proc);
  OM.storePointer(List, LlLastLink, Proc);
}

bool Scheduler::llRemove(Oop List, Oop Proc) {
  ObjectMemory &OM = Om.memory();
  Oop Nil = Om.nil();
  Oop Prev = Nil;
  for (Oop Cur = ObjectMemory::fetchPointer(List, LlFirstLink); Cur != Nil;
       Cur = ObjectMemory::fetchPointer(Cur, ProcNextLink)) {
    if (Cur == Proc) {
      Oop Next = ObjectMemory::fetchPointer(Cur, ProcNextLink);
      if (Prev == Nil)
        OM.storePointer(List, LlFirstLink, Next);
      else
        OM.storePointer(Prev, ProcNextLink, Next);
      if (ObjectMemory::fetchPointer(List, LlLastLink) == Proc)
        OM.storePointer(List, LlLastLink, Prev);
      OM.storePointer(Proc, ProcNextLink, Nil);
      OM.storePointer(Proc, ProcMyList, Nil);
      return true;
    }
    Prev = Cur;
  }
  return false;
}

Oop Scheduler::llRemoveFirst(Oop List) {
  ObjectMemory &OM = Om.memory();
  Oop Nil = Om.nil();
  Oop First = ObjectMemory::fetchPointer(List, LlFirstLink);
  if (First == Nil)
    return Oop();
  Oop Next = ObjectMemory::fetchPointer(First, ProcNextLink);
  OM.storePointer(List, LlFirstLink, Next);
  if (Next == Nil)
    OM.storePointer(List, LlLastLink, Nil);
  OM.storePointer(First, ProcNextLink, Nil);
  OM.storePointer(First, ProcMyList, Nil);
  return First;
}

Oop Scheduler::readyListFor(Oop Proc) {
  intptr_t Pri = ObjectMemory::fetchPointer(Proc, ProcPriority).smallInt();
  assert(Pri >= 1 && Pri <= static_cast<intptr_t>(NumPriorities) &&
         "priority out of range");
  Oop Lists = ObjectMemory::fetchPointer(Om.known().Processor,
                                         SchedQuiescentProcessLists);
  return ObjectMemory::fetchPointer(Lists,
                                    static_cast<uint32_t>(Pri - 1));
}

/// --- public API ------------------------------------------------------

Oop Scheduler::createProcess(Oop InitialContext, int Priority,
                             const std::string &Name) {
  assert(Priority >= 1 && Priority <= static_cast<int>(NumPriorities) &&
         "priority out of range");
  ObjectMemory &OM = Om.memory();
  // Protect the context across the allocations below.
  Handle Ctx(OM.handles(), InitialContext);
  Handle Proc(OM.handles(),
              OM.allocatePointers(Om.known().ClassProcess,
                                  ProcessSlotCount));
  if (Proc.get().isNull())
    return Oop(); // Out of memory; the caller reports the failure.
  Oop NameStr = Name.empty() ? Om.nil() : Om.makeString(Name);
  OM.storePointer(Proc.get(), ProcNextLink, Om.nil());
  OM.storePointer(Proc.get(), ProcSuspendedContext, Ctx.get());
  OM.storePointer(Proc.get(), ProcPriority, Oop::fromSmallInt(Priority));
  OM.storePointer(Proc.get(), ProcMyList, Om.nil());
  OM.storePointer(Proc.get(), ProcName, NameStr);
  OM.storePointer(Proc.get(), ProcRunning, Oop::fromSmallInt(0));
  OM.storePointer(Proc.get(), ProcAccumUs, Oop::fromSmallInt(0));
  return Proc.get();
}

void Scheduler::addReadyProcess(Oop Proc) {
  {
    SpinLockGuard Guard(Lock);
    assert(ObjectMemory::fetchPointer(Proc, ProcMyList) == Om.nil() &&
           "process is already on a list");
    llAppend(readyListFor(Proc), Proc);
  }
  notifyWork();
}

Oop Scheduler::pickProcessToRun() {
  chaos::point("sched.dispatch");
  SpinLockGuard Guard(Lock);
  Oop Nil = Om.nil();
  Oop Lists = ObjectMemory::fetchPointer(Om.known().Processor,
                                         SchedQuiescentProcessLists);
  for (int Pri = NumPriorities - 1; Pri >= 0; --Pri) {
    Oop List =
        ObjectMemory::fetchPointer(Lists, static_cast<uint32_t>(Pri));
    for (Oop P = ObjectMemory::fetchPointer(List, LlFirstLink); P != Nil;
         P = ObjectMemory::fetchPointer(P, ProcNextLink)) {
      if (ObjectMemory::fetchPointer(P, ProcRunning).smallInt() == 0) {
        Om.memory().storePointer(P, ProcRunning, Oop::fromSmallInt(1));
        Picks.add();
        return P;
      }
    }
  }
  return Oop();
}

void Scheduler::yieldProcess(Oop Proc) {
  Yields.add();
  {
    SpinLockGuard Guard(Lock);
    Oop List = ObjectMemory::fetchPointer(Proc, ProcMyList);
    Om.memory().storePointer(Proc, ProcRunning, Oop::fromSmallInt(0));
    if (List != Om.nil()) {
      // Rotate to the back of its priority list.
      llRemove(List, Proc);
      llAppend(readyListFor(Proc), Proc);
    }
  }
  notifyWork();
}

bool Scheduler::semaphoreWait(Oop Sem, Oop Proc) {
  SpinLockGuard Guard(Lock);
  ObjectMemory &OM = Om.memory();
  intptr_t Excess =
      ObjectMemory::fetchPointer(Sem, SemExcessSignals).smallInt();
  if (Excess > 0) {
    OM.storePointer(Sem, SemExcessSignals, Oop::fromSmallInt(Excess - 1));
    return false;
  }
  Oop List = ObjectMemory::fetchPointer(Proc, ProcMyList);
  if (List != Om.nil())
    llRemove(List, Proc);
  llAppend(Sem, Proc);
  OM.storePointer(Proc, ProcRunning, Oop::fromSmallInt(0));
  return true;
}

void Scheduler::semaphoreSignal(Oop Sem) {
  Oop Woken;
  {
    SpinLockGuard Guard(Lock);
    Woken = llRemoveFirst(Sem);
    if (Woken.isNull()) {
      intptr_t Excess =
          ObjectMemory::fetchPointer(Sem, SemExcessSignals).smallInt();
      Om.memory().storePointer(Sem, SemExcessSignals,
                               Oop::fromSmallInt(Excess + 1));
      return;
    }
    llAppend(readyListFor(Woken), Woken);
  }
  notifyWork();
}

void Scheduler::suspendProcess(Oop Proc) {
  SpinLockGuard Guard(Lock);
  Oop List = ObjectMemory::fetchPointer(Proc, ProcMyList);
  if (List != Om.nil())
    llRemove(List, Proc);
}

void Scheduler::resumeProcess(Oop Proc) {
  {
    SpinLockGuard Guard(Lock);
    if (ObjectMemory::fetchPointer(Proc, ProcMyList) != Om.nil())
      return; // Already waiting or ready; resume is a no-op.
    llAppend(readyListFor(Proc), Proc);
  }
  notifyWork();
}

void Scheduler::terminateProcess(Oop Proc) {
  SpinLockGuard Guard(Lock);
  ObjectMemory &OM = Om.memory();
  Oop List = ObjectMemory::fetchPointer(Proc, ProcMyList);
  if (List != Om.nil())
    llRemove(List, Proc);
  OM.storePointer(Proc, ProcSuspendedContext, Om.nil());
  OM.storePointer(Proc, ProcRunning, Oop::fromSmallInt(0));
}

bool Scheduler::canRun(Oop Proc) {
  SpinLockGuard Guard(Lock);
  Oop List = ObjectMemory::fetchPointer(Proc, ProcMyList);
  if (List == Om.nil())
    return false;
  // On a list: runnable iff that list is its ready list (not a semaphore).
  return List == readyListFor(Proc);
}

bool Scheduler::releaseAfterSlice(Oop Proc) {
  SpinLockGuard Guard(Lock);
  Om.memory().storePointer(Proc, ProcRunning, Oop::fromSmallInt(0));
  Oop List = ObjectMemory::fetchPointer(Proc, ProcMyList);
  return List != Om.nil() && List == readyListFor(Proc);
}

void Scheduler::waitForWork() {
  ProfStateScope Prof(ProfState::Idle);
  chaos::point("sched.wait");
  std::unique_lock<std::mutex> Idle(IdleMutex);
  uint64_t Seen = WorkEpoch;
  IdleCv.wait_for(Idle, std::chrono::milliseconds(1),
                  [this, Seen] { return WorkEpoch != Seen; });
}

void Scheduler::notifyWork() {
  chaos::point("sched.notify");
  std::lock_guard<std::mutex> Idle(IdleMutex);
  ++WorkEpoch;
  IdleCv.notify_all();
}

void Scheduler::fillActiveProcessSlot(Oop Proc) {
  Om.memory().storePointer(Om.known().Processor, SchedActiveProcess, Proc);
}

void Scheduler::emptyActiveProcessSlot() {
  Om.memory().storePointer(Om.known().Processor, SchedActiveProcess,
                           Om.nil());
}

unsigned Scheduler::readyCount() {
  SpinLockGuard Guard(Lock);
  Oop Nil = Om.nil();
  Oop Lists = ObjectMemory::fetchPointer(Om.known().Processor,
                                         SchedQuiescentProcessLists);
  unsigned N = 0;
  for (uint32_t Pri = 0; Pri < NumPriorities; ++Pri) {
    Oop List = ObjectMemory::fetchPointer(Lists, Pri);
    for (Oop P = ObjectMemory::fetchPointer(List, LlFirstLink); P != Nil;
         P = ObjectMemory::fetchPointer(P, ProcNextLink))
      ++N;
  }
  return N;
}
