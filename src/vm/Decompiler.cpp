//===-- vm/Decompiler.cpp - CompiledMethod -> source text -------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Decompiler.h"

#include <algorithm>
#include <vector>

#include "support/Assert.h"
#include "vm/Bytecode.h"

using namespace mst;

namespace {

/// Reconstructs expressions from straight-line bytecode with a symbolic
/// operand stack. Bails out (Ok=false) on anything it cannot shape.
class Reconstructor {
public:
  Reconstructor(ObjectModel &Om, Oop Method)
      : Om(Om), Method(Method),
        Lits(ObjectMemory::fetchPointer(Method, MthLiterals)),
        NumArgs(static_cast<unsigned>(
            ObjectMemory::fetchPointer(Method, MthNumArgs).smallInt())),
        NumTemps(static_cast<unsigned>(
            ObjectMemory::fetchPointer(Method, MthNumTemps).smallInt())) {
    Oop Bytes = ObjectMemory::fetchPointer(Method, MthBytecodes);
    Code = Bytes.object()->bytes();
    CodeLen = Bytes.object()->ByteLength;
    Oop Cls = ObjectMemory::fetchPointer(Method, MthClass);
    IvarNames = ObjectMemory::fetchPointer(Cls, ClsInstVarNames);
  }

  bool run(std::string &Out) {
    std::vector<std::string> Stmts;
    if (!decodeRegion(0, CodeLen, Stmts))
      return false;
    // Emit the temp declaration only for slots that are true method
    // temporaries: block parameters also live in the home frame (blue
    // book), but re-declaring them would allocate a second slot on
    // recompilation.
    Out = patternFor();
    std::string Temps;
    for (unsigned I = NumArgs; I < NumTemps; ++I)
      if (std::find(BlockParamSlots.begin(), BlockParamSlots.end(), I) ==
          BlockParamSlots.end())
        Temps += tempName(I) + " ";
    if (!Temps.empty())
      Out += "    | " + Temps + "|\n";
    for (const std::string &S : Stmts)
      Out += "    " + S + ".\n";
    return true;
  }

  /// Header for the listing fallback (which is not recompilable, so the
  /// over-inclusive temp list is purely informational there).
  std::string header() const {
    std::string H = patternFor();
    if (NumTemps > NumArgs) {
      H += "    | ";
      for (unsigned I = NumArgs; I < NumTemps; ++I)
        H += tempName(I) + " ";
      H += "|\n";
    }
    return H;
  }

private:
  std::string tempName(unsigned I) const {
    if (I < NumArgs)
      return "arg" + std::to_string(I + 1);
    return "t" + std::to_string(I + 1 - NumArgs);
  }

  std::string ivarName(unsigned I) const {
    if (IvarNames != Om.nil() && I < IvarNames.object()->SlotCount)
      return ObjectModel::stringValue(IvarNames.object()->slots()[I]);
    return "ivar" + std::to_string(I + 1);
  }

  std::string patternFor() const {
    std::string Sel = ObjectModel::stringValue(
        ObjectMemory::fetchPointer(Method, MthSelector));
    if (NumArgs == 0)
      return Sel + "\n";
    if (Sel.find(':') == std::string::npos)
      return Sel + " " + tempName(0) + "\n"; // binary selector
    std::string Out;
    size_t Start = 0;
    unsigned Arg = 0;
    for (size_t I = 0; I < Sel.size(); ++I) {
      if (Sel[I] == ':') {
        Out += Sel.substr(Start, I - Start + 1) + " " + tempName(Arg++) +
               " ";
        Start = I + 1;
      }
    }
    Out += "\n";
    return Out;
  }

  std::string literalText(unsigned I) const {
    return Om.describe(Lits.object()->slots()[I]);
  }

  /// Wraps \p E in parentheses when it is not a simple operand.
  static std::string paren(const std::string &E) {
    if (E.find(' ') == std::string::npos)
      return E;
    return "(" + E + ")";
  }

  bool decodeRegion(uint32_t From, uint32_t To,
                    std::vector<std::string> &Stmts) {
    std::vector<std::string> Stack;
    uint32_t Ip = From;
    while (Ip < To) {
      Op O = static_cast<Op>(Code[Ip]);
      uint32_t Len = instructionLength(Code, Ip);
      uint32_t Next = Ip + Len;
      switch (O) {
      case Op::PushSelf:
        Stack.push_back("self");
        break;
      case Op::PushNil:
        Stack.push_back("nil");
        break;
      case Op::PushTrue:
        Stack.push_back("true");
        break;
      case Op::PushFalse:
        Stack.push_back("false");
        break;
      case Op::PushThisContext:
        Stack.push_back("thisContext");
        break;
      case Op::PushTemp:
        Stack.push_back(tempName(Code[Ip + 1]));
        break;
      case Op::PushInstVar:
        Stack.push_back(ivarName(Code[Ip + 1]));
        break;
      case Op::PushLiteral:
        Stack.push_back(literalText(Code[Ip + 1]));
        break;
      case Op::PushGlobal: {
        Oop Assoc = Lits.object()->slots()[Code[Ip + 1]];
        Stack.push_back(ObjectModel::stringValue(
            ObjectMemory::fetchPointer(Assoc, AssocKey)));
        break;
      }
      case Op::PushSmallInt:
        Stack.push_back(
            std::to_string(static_cast<int8_t>(Code[Ip + 1])));
        break;
      case Op::StoreTemp: {
        if (Stack.empty())
          return false;
        Stack.back() =
            tempName(Code[Ip + 1]) + " := " + Stack.back();
        break;
      }
      case Op::StoreInstVar: {
        if (Stack.empty())
          return false;
        Stack.back() =
            ivarName(Code[Ip + 1]) + " := " + Stack.back();
        break;
      }
      case Op::StoreGlobal: {
        if (Stack.empty())
          return false;
        Oop Assoc = Lits.object()->slots()[Code[Ip + 1]];
        Stack.back() = ObjectModel::stringValue(
                           ObjectMemory::fetchPointer(Assoc, AssocKey)) +
                       " := " + Stack.back();
        break;
      }
      case Op::Pop:
        if (Stack.empty())
          return false;
        Stmts.push_back(Stack.back());
        Stack.pop_back();
        break;
      case Op::Send:
      case Op::SendSuper: {
        unsigned Argc = Code[Ip + 2];
        Oop Sel = Lits.object()->slots()[Code[Ip + 1]];
        if (!applySend(ObjectModel::stringValue(Sel), Argc, Stack))
          return false;
        break;
      }
      case Op::SendSpecial: {
        auto S = static_cast<SpecialSelector>(Code[Ip + 1]);
        if (!applySend(specialSelectorName(S), 1, Stack))
          return false;
        break;
      }
      case Op::BlockCopy: {
        unsigned NArgs = Code[Ip + 1];
        uint16_t Skip =
            static_cast<uint16_t>(Code[Ip + 3] | (Code[Ip + 4] << 8));
        uint32_t BodyStart = Ip + 5;
        std::string Block;
        if (!decodeBlock(BodyStart, BodyStart + Skip, NArgs, Block))
          return false;
        Stack.push_back(Block);
        Next = BodyStart + Skip;
        break;
      }
      case Op::ReturnTop:
        if (Stack.empty())
          return false;
        Stmts.push_back("^" + Stack.back());
        Stack.pop_back();
        break;
      case Op::ReturnSelf:
        // The implicit trailing return is not a source statement.
        if (Next < To)
          Stmts.push_back("^self");
        break;
      case Op::BlockReturn:
        if (Stack.empty())
          return false;
        Stmts.push_back(Stack.back());
        Stack.pop_back();
        break;
      case Op::Dup:
      case Op::Jump:
      case Op::JumpIfTrue:
      case Op::JumpIfFalse:
        return false; // cascades / inlined control flow: use the listing
      }
      Ip = Next;
    }
    return Stack.empty();
  }

  bool decodeBlock(uint32_t From, uint32_t To, unsigned NArgs,
                   std::string &Out) {
    // Skip the parameter-popping prologue: NArgs pairs of StoreTemp/Pop.
    std::string Params;
    uint32_t Ip = From;
    for (unsigned I = 0; I < NArgs; ++I) {
      if (Ip + 3 > To || static_cast<Op>(Code[Ip]) != Op::StoreTemp ||
          static_cast<Op>(Code[Ip + 2]) != Op::Pop)
        return false;
      Params = ":" + tempName(Code[Ip + 1]) + " " + Params;
      BlockParamSlots.push_back(Code[Ip + 1]);
      Ip += 3;
    }
    std::vector<std::string> Stmts;
    if (!decodeRegion(Ip, To, Stmts))
      return false;
    Out = "[";
    if (NArgs)
      Out += Params + "| ";
    for (size_t I = 0; I < Stmts.size(); ++I) {
      if (I)
        Out += ". ";
      Out += Stmts[I];
    }
    Out += "]";
    return true;
  }

  bool applySend(const std::string &Sel, unsigned Argc,
                 std::vector<std::string> &Stack) {
    if (Stack.size() < Argc + 1)
      return false;
    std::vector<std::string> Args(Argc);
    for (unsigned I = 0; I < Argc; ++I) {
      Args[Argc - 1 - I] = Stack.back();
      Stack.pop_back();
    }
    std::string Recv = paren(Stack.back());
    Stack.pop_back();
    std::string Expr;
    if (Argc == 0) {
      Expr = Recv + " " + Sel;
    } else if (Sel.find(':') == std::string::npos) {
      Expr = Recv + " " + Sel + " " + paren(Args[0]);
    } else {
      Expr = Recv;
      size_t Start = 0;
      unsigned A = 0;
      for (size_t I = 0; I < Sel.size(); ++I) {
        if (Sel[I] == ':') {
          Expr += " " + Sel.substr(Start, I - Start + 1) + " " +
                  paren(Args[A++]);
          Start = I + 1;
        }
      }
    }
    Stack.push_back(Expr);
    return true;
  }

  ObjectModel &Om;
  Oop Method;
  Oop Lits;
  Oop IvarNames;
  const uint8_t *Code;
  uint32_t CodeLen;
  unsigned NumArgs;
  unsigned NumTemps;
  std::vector<unsigned> BlockParamSlots;
};

/// The fallback: a bytecode listing with literal values resolved.
std::string listingFor(ObjectModel &Om, Oop Method) {
  Oop Bytes = ObjectMemory::fetchPointer(Method, MthBytecodes);
  Oop Lits = ObjectMemory::fetchPointer(Method, MthLiterals);
  const uint8_t *Code = Bytes.object()->bytes();
  uint32_t Len = Bytes.object()->ByteLength;

  std::string Out = "\"decompiled listing\"\n";
  for (uint32_t Ip = 0; Ip < Len;) {
    Out += disassembleOne(Code, Ip);
    Op O = static_cast<Op>(Code[Ip]);
    if (O == Op::Send || O == Op::SendSuper || O == Op::PushLiteral ||
        O == Op::PushGlobal) {
      Out += "    \"";
      Out += Om.describe(Lits.object()->slots()[Code[Ip + 1]]);
      Out += "\"";
    }
    Out += '\n';
    Ip += instructionLength(Code, Ip);
  }
  return Out;
}

} // namespace

std::string mst::decompileMethod(ObjectModel &Om, Oop Method) {
  Reconstructor R(Om, Method);
  std::string Out;
  if (R.run(Out))
    return Out;
  return R.header() + listingFor(Om, Method);
}
