//===-- vm/SymbolTable.cpp - Interned symbols -------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/SymbolTable.h"

#include <cstring>

#include "objmem/ObjectMemory.h"

using namespace mst;

Oop SymbolTable::intern(ObjectMemory &OM, const std::string &Name) {
  {
    SpinLockGuard Guard(Lock);
    auto It = Index.find(Name);
    if (It != Index.end())
      return Symbols[It->second];
  }
  // Allocate outside the lock (old-space allocation takes its own lock and
  // never scavenges). Two racers may both build a symbol; the second
  // insert under the lock wins consistency by re-checking.
  Oop Sym = OM.allocateOldBytes(SymbolClass,
                                static_cast<uint32_t>(Name.size()));
  std::memcpy(Sym.object()->bytes(), Name.data(), Name.size());

  SpinLockGuard Guard(Lock);
  auto It = Index.find(Name);
  if (It != Index.end())
    return Symbols[It->second]; // Lost the race; the duplicate is garbage.
  Index.emplace(Name, Symbols.size());
  Symbols.push_back(Sym);
  return Sym;
}

Oop SymbolTable::lookup(const std::string &Name) {
  SpinLockGuard Guard(Lock);
  auto It = Index.find(Name);
  return It == Index.end() ? Oop() : Symbols[It->second];
}

size_t SymbolTable::size() {
  SpinLockGuard Guard(Lock);
  return Symbols.size();
}

void SymbolTable::adoptLoadedSymbols(
    const std::vector<std::pair<std::string, Oop>> &Loaded) {
  SpinLockGuard Guard(Lock);
  Index.clear();
  Symbols.clear();
  for (const auto &[Name, Sym] : Loaded) {
    assert(Sym.isPointer() && Sym.object()->isOld() &&
           "loaded symbols must be old-space objects");
    Index.emplace(Name, Symbols.size());
    Symbols.push_back(Sym);
  }
}
