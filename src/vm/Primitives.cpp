//===-- vm/Primitives.cpp - Primitive operations ----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implementation of Interpreter::dispatchPrimitive. Conventions:
///  - On entry the operand stack holds [receiver, arg1 .. argN].
///  - Success replaces them with the result.
///  - Fail leaves the stack untouched; the send falls through to the
///    method's Smalltalk body.
///  - Any primitive that allocates in new space is a GC point: it writes
///    the ip back, allocates, and reloads the frame cache.
///
//===----------------------------------------------------------------------===//

#include <atomic>
#include <cstring>

#include "support/Assert.h"
#include "vm/Compiler.h"
#include "vm/Decompiler.h"
#include "vm/Interpreter.h"
#include "vm/Primitives.h"
#include "vm/VirtualMachine.h"

using namespace mst;

namespace {

/// Byte objects (Strings, the shared display buffer) are accessed from
/// several Smalltalk processes with no lock, by the paper's design. Relaxed
/// per-byte atomics keep concurrent access untorn without imposing
/// ordering; memcpy/memmove would be plain accesses racing a concurrent
/// at:put: store.
uint8_t loadByteRelaxed(const uint8_t *P) {
  return std::atomic_ref<const uint8_t>(*P).load(std::memory_order_relaxed);
}

void storeByteRelaxed(uint8_t *P, uint8_t V) {
  std::atomic_ref<uint8_t>(*P).store(V, std::memory_order_relaxed);
}

/// memmove semantics: handles overlap by picking the copy direction.
void copyBytesRelaxed(uint8_t *Dst, const uint8_t *Src, size_t N) {
  if (Dst <= Src)
    for (size_t I = 0; I < N; ++I)
      storeByteRelaxed(Dst + I, loadByteRelaxed(Src + I));
  else
    for (size_t I = N; I > 0; --I)
      storeByteRelaxed(Dst + I - 1, loadByteRelaxed(Src + I - 1));
}

} // namespace

Interpreter::PrimResult Interpreter::dispatchPrimitive(int Index,
                                                       unsigned Argc) {
  KnownObjects &K = Om.known();
  Oop Nil = Om.nil();
  Oop Recv = topValue(Argc);

  auto Replace = [this, Argc](Oop Result) {
    dropValues(Argc + 1);
    pushValue(Result);
    return PrimResult::Success;
  };

  switch (Index) {
  /// --- object access ----------------------------------------------------
  case PrimAt: {
    Oop IdxO = topValue(0);
    if (!IdxO.isSmallInt() || !Recv.isPointer())
      return PrimResult::Fail;
    intptr_t Idx = IdxO.smallInt();
    ObjectHeader *H = Recv.object();
    if (H->Format == ObjectFormat::Bytes) {
      if (Idx < 1 || Idx > static_cast<intptr_t>(H->ByteLength))
        return PrimResult::Fail;
      uint8_t Byte = loadByteRelaxed(&H->bytes()[Idx - 1]);
      bool IsStr = Om.isKindOf(Recv, K.ClassString);
      return Replace(IsStr ? Om.characterFor(Byte)
                           : Oop::fromSmallInt(Byte));
    }
    if (H->Format == ObjectFormat::Pointers) {
      Oop Cls = H->classOop();
      if (Om.kindOf(Cls) != ClassKind::IdxPointers)
        return PrimResult::Fail;
      uint32_t Fixed = Om.fixedFieldsOf(Cls);
      if (Idx < 1 ||
          Idx > static_cast<intptr_t>(H->SlotCount - Fixed))
        return PrimResult::Fail;
      return Replace(ObjectMemory::fetchPointer(
          Recv, Fixed + static_cast<uint32_t>(Idx) - 1));
    }
    return PrimResult::Fail;
  }

  case PrimAtPut: {
    Oop IdxO = topValue(1);
    Oop Val = topValue(0);
    if (!IdxO.isSmallInt() || !Recv.isPointer())
      return PrimResult::Fail;
    intptr_t Idx = IdxO.smallInt();
    ObjectHeader *H = Recv.object();
    if (H->Format == ObjectFormat::Bytes) {
      if (Idx < 1 || Idx > static_cast<intptr_t>(H->ByteLength))
        return PrimResult::Fail;
      intptr_t Byte;
      if (Val.isSmallInt())
        Byte = Val.smallInt();
      else if (Val.isPointer() && Om.classOf(Val) == K.ClassCharacter)
        Byte = ObjectMemory::fetchPointer(Val, CharValue).smallInt();
      else
        return PrimResult::Fail;
      if (Byte < 0 || Byte > 255)
        return PrimResult::Fail;
      storeByteRelaxed(&H->bytes()[Idx - 1], static_cast<uint8_t>(Byte));
      return Replace(Val);
    }
    if (H->Format == ObjectFormat::Pointers) {
      Oop Cls = H->classOop();
      if (Om.kindOf(Cls) != ClassKind::IdxPointers)
        return PrimResult::Fail;
      uint32_t Fixed = Om.fixedFieldsOf(Cls);
      if (Idx < 1 ||
          Idx > static_cast<intptr_t>(H->SlotCount - Fixed))
        return PrimResult::Fail;
      OM.storePointer(Recv, Fixed + static_cast<uint32_t>(Idx) - 1, Val);
      return Replace(Val);
    }
    return PrimResult::Fail;
  }

  case PrimSize: {
    if (!Recv.isPointer())
      return Replace(Oop::fromSmallInt(0));
    ObjectHeader *H = Recv.object();
    if (H->Format == ObjectFormat::Bytes)
      return Replace(Oop::fromSmallInt(H->ByteLength));
    if (H->Format == ObjectFormat::Pointers) {
      Oop Cls = H->classOop();
      if (Om.kindOf(Cls) == ClassKind::IdxPointers)
        return Replace(
            Oop::fromSmallInt(H->SlotCount - Om.fixedFieldsOf(Cls)));
    }
    return Replace(Oop::fromSmallInt(0));
  }

  case PrimBasicNew:
  case PrimBasicNewSize: {
    if (!Recv.isPointer() || !Om.isKindOf(Recv, K.ClassBehavior))
      return PrimResult::Fail;
    uint32_t N = 0;
    if (Index == PrimBasicNewSize) {
      Oop NO = topValue(0);
      if (!NO.isSmallInt() || NO.smallInt() < 0)
        return PrimResult::Fail;
      N = static_cast<uint32_t>(NO.smallInt());
    }
    if (Om.kindOf(Recv) == ClassKind::Fixed && Index == PrimBasicNewSize)
      return PrimResult::Fail;
    writeBackIp();
    Oop Inst = Om.instantiate(Recv, N);
    reloadFrame();
    if (Inst.isNull()) {
      vmError("OutOfMemoryError: basicNew failed (heap ceiling reached)");
      return PrimResult::Success;
    }
    return Replace(Inst);
  }

  case PrimClass:
    return Replace(Om.classOf(Recv));

  case PrimIdentityHash:
    return Replace(Oop::fromSmallInt(ObjectModel::identityHash(Recv)));

  case PrimIdentical:
    return Replace(Om.boolFor(Recv == topValue(0)));

  case PrimShallowCopy: {
    if (!Recv.isPointer())
      return Replace(Recv); // immediates copy as themselves
    ObjectHeader *H = Recv.object();
    if (H->Format == ObjectFormat::Context)
      return PrimResult::Fail; // contexts are not copyable objects
    writeBackIp();
    Oop Copy;
    if (H->Format == ObjectFormat::Bytes) {
      Copy = OM.allocateBytes(Om.classOf(Recv), H->ByteLength);
      reloadFrame();
      if (Copy.isNull()) {
        vmError("OutOfMemoryError: shallowCopy failed (heap ceiling "
                "reached)");
        return PrimResult::Success;
      }
      // Refetch the receiver: the allocation may have moved it.
      Oop Src = topValue(Argc);
      copyBytesRelaxed(Copy.object()->bytes(), Src.object()->bytes(),
                       Src.object()->ByteLength);
    } else {
      Copy = OM.allocatePointers(Om.classOf(Recv), H->SlotCount);
      reloadFrame();
      if (Copy.isNull()) {
        vmError("OutOfMemoryError: shallowCopy failed (heap ceiling "
                "reached)");
        return PrimResult::Success;
      }
      Oop Src = topValue(Argc);
      for (uint32_t I = 0; I < Src.object()->SlotCount; ++I)
        OM.storePointer(Copy, I, ObjectMemory::fetchPointer(Src, I));
    }
    return Replace(Copy);
  }

  case PrimReplaceFromTo: {
    // receiver replaceFrom: start to: stop with: src startingAt: srcStart
    Oop StartO = topValue(3), StopO = topValue(2), Src = topValue(1),
        SrcStartO = topValue(0);
    if (!StartO.isSmallInt() || !StopO.isSmallInt() ||
        !SrcStartO.isSmallInt() || !Recv.isPointer() || !Src.isPointer())
      return PrimResult::Fail;
    intptr_t Start = StartO.smallInt(), Stop = StopO.smallInt(),
             SrcStart = SrcStartO.smallInt();
    if (Start < 1 || Stop < Start - 1 || SrcStart < 1)
      return PrimResult::Fail;
    intptr_t Count = Stop - Start + 1;
    ObjectHeader *D = Recv.object();
    ObjectHeader *S = Src.object();
    if (D->Format == ObjectFormat::Bytes &&
        S->Format == ObjectFormat::Bytes) {
      if (Stop > static_cast<intptr_t>(D->ByteLength) ||
          SrcStart + Count - 1 > static_cast<intptr_t>(S->ByteLength))
        return PrimResult::Fail;
      copyBytesRelaxed(D->bytes() + Start - 1, S->bytes() + SrcStart - 1,
                       static_cast<size_t>(Count));
      return Replace(Recv);
    }
    if (D->Format == ObjectFormat::Pointers &&
        S->Format == ObjectFormat::Pointers) {
      Oop DCls = D->classOop(), SCls = S->classOop();
      if (Om.kindOf(DCls) != ClassKind::IdxPointers ||
          Om.kindOf(SCls) != ClassKind::IdxPointers)
        return PrimResult::Fail;
      uint32_t DF = Om.fixedFieldsOf(DCls), SF = Om.fixedFieldsOf(SCls);
      if (Stop > static_cast<intptr_t>(D->SlotCount - DF) ||
          SrcStart + Count - 1 > static_cast<intptr_t>(S->SlotCount - SF))
        return PrimResult::Fail;
      for (intptr_t I = 0; I < Count; ++I)
        OM.storePointer(
            Recv, DF + static_cast<uint32_t>(Start - 1 + I),
            ObjectMemory::fetchPointer(
                Src, static_cast<uint32_t>(SF + SrcStart - 1 + I)));
      return Replace(Recv);
    }
    return PrimResult::Fail;
  }

  case PrimAsSymbol: {
    if (!Recv.isPointer() || Recv.object()->Format != ObjectFormat::Bytes)
      return PrimResult::Fail;
    // Interning allocates in (non-moving) old space only.
    return Replace(Om.intern(ObjectModel::stringValue(Recv)));
  }

  case PrimSymbolAsString: {
    if (!Recv.isPointer() || Recv.object()->Format != ObjectFormat::Bytes)
      return PrimResult::Fail;
    std::string Text = ObjectModel::stringValue(Recv);
    writeBackIp();
    Oop Str = Om.makeString(Text);
    reloadFrame();
    if (Str.isNull()) {
      vmError("OutOfMemoryError: asString failed (heap ceiling reached)");
      return PrimResult::Success;
    }
    return Replace(Str);
  }

  case PrimCharFromValue: {
    Oop VO = topValue(0);
    if (!VO.isSmallInt() || VO.smallInt() < 0 || VO.smallInt() > 255)
      return PrimResult::Fail;
    return Replace(Om.characterFor(static_cast<uint8_t>(VO.smallInt())));
  }

  case PrimInstVarAt: {
    Oop IdxO = topValue(0);
    if (!IdxO.isSmallInt() || !Recv.isPointer())
      return PrimResult::Fail;
    intptr_t Idx = IdxO.smallInt();
    ObjectHeader *H = Recv.object();
    if (H->Format == ObjectFormat::Bytes || Idx < 1 ||
        Idx > static_cast<intptr_t>(H->SlotCount))
      return PrimResult::Fail;
    return Replace(H->slots()[Idx - 1]);
  }

  case PrimInstVarAtPut: {
    Oop IdxO = topValue(1);
    Oop Val = topValue(0);
    if (!IdxO.isSmallInt() || !Recv.isPointer())
      return PrimResult::Fail;
    intptr_t Idx = IdxO.smallInt();
    ObjectHeader *H = Recv.object();
    if (H->Format == ObjectFormat::Bytes || Idx < 1 ||
        Idx > static_cast<intptr_t>(H->SlotCount))
      return PrimResult::Fail;
    OM.storePointer(Recv, static_cast<uint32_t>(Idx) - 1, Val);
    return Replace(Val);
  }

  case PrimStringEqual: {
    Oop Other = topValue(0);
    if (!Recv.isPointer() || !Other.isPointer())
      return PrimResult::Fail;
    ObjectHeader *A = Recv.object(), *B = Other.object();
    if (A->Format != ObjectFormat::Bytes ||
        B->Format != ObjectFormat::Bytes)
      return PrimResult::Fail;
    bool Eq = A->ByteLength == B->ByteLength &&
              std::memcmp(A->bytes(), B->bytes(), A->ByteLength) == 0;
    return Replace(Om.boolFor(Eq));
  }

  /// --- blocks --------------------------------------------------------
  case PrimBlockValue: {
    if (!Recv.isPointer() || Om.classOf(Recv) != K.ClassBlockContext)
      return PrimResult::Fail;
    ObjectHeader *B = Recv.object();
    if (B->slots()[BlkNumArgs].smallInt() != static_cast<intptr_t>(Argc))
      return PrimResult::Fail;
    // Transfer the arguments onto the block's own (fresh) stack.
    for (unsigned I = 0; I < Argc; ++I) {
      Oop Arg = topValue(Argc - 1 - I);
      B->slots()[BlkFixedSlots + I] = Arg;
      OM.writeBarrier(B, Arg);
    }
    B->slots()[BlkSp] =
        Oop::fromSmallInt(BlkFixedSlots + static_cast<intptr_t>(Argc) - 1);
    B->slots()[BlkIp] = B->slots()[BlkInitialIp];
    B->slots()[BlkCaller] = Roots.ActiveContext;
    OM.writeBarrier(B, Roots.ActiveContext);
    dropValues(Argc + 1);
    writeBackIp();
    Roots.ActiveContext = Recv;
    reloadFrame();
    return PrimResult::Success;
  }

  /// --- processes --------------------------------------------------------
  case PrimNewProcess: {
    // aBlock newProcessAt: priority — the block must take no arguments.
    Oop PrioO = topValue(0);
    if (!Recv.isPointer() || Om.classOf(Recv) != K.ClassBlockContext ||
        !PrioO.isSmallInt())
      return PrimResult::Fail;
    intptr_t Prio = PrioO.smallInt();
    if (Prio < 1 || Prio > static_cast<intptr_t>(NumPriorities))
      return PrimResult::Fail;
    if (Recv.object()->slots()[BlkNumArgs].smallInt() != 0)
      return PrimResult::Fail;

    writeBackIp();
    uint32_t Slots = Recv.object()->SlotCount;
    Oop NewBlk = OM.allocateContextObject(K.ClassBlockContext, Slots);
    reloadFrame();
    if (NewBlk.isNull()) {
      vmError("OutOfMemoryError: newProcess failed (heap ceiling reached)");
      return PrimResult::Success;
    }
    // Refetch the (possibly moved) receiver block.
    Oop Blk = topValue(Argc);
    ObjectHeader *B = Blk.object();
    ObjectHeader *N = NewBlk.object();
    N->slots()[BlkCaller] = Nil;
    N->slots()[BlkIp] = B->slots()[BlkInitialIp];
    N->slots()[BlkSp] = Oop::fromSmallInt(BlkFixedSlots - 1);
    N->slots()[BlkNumArgs] = Oop::fromSmallInt(0);
    N->slots()[BlkInitialIp] = B->slots()[BlkInitialIp];
    Oop Home = B->slots()[BlkHome];
    N->slots()[BlkHome] = Home;
    OM.writeBarrier(N, Home);
    N->setEscaped();

    Oop Proc = VM.scheduler().createProcess(NewBlk, static_cast<int>(Prio),
                                            "forked");
    reloadFrame();
    if (Proc.isNull()) {
      vmError("OutOfMemoryError: newProcess failed (heap ceiling reached)");
      return PrimResult::Success;
    }
    return Replace(Proc);
  }

  case PrimResumeProcess: {
    if (!Recv.isPointer() || Om.classOf(Recv) != K.ClassProcess)
      return PrimResult::Fail;
    VM.scheduler().resumeProcess(Recv);
    return Replace(Recv);
  }

  case PrimSuspendProcess: {
    if (!Recv.isPointer() || Om.classOf(Recv) != K.ClassProcess)
      return PrimResult::Fail;
    if (Recv == Roots.ActiveProcess) {
      writeBackIp();
      // The receiver (== result) is already on the stack for resumption.
      dropValues(Argc + 1);
      pushValue(Recv);
      saveProcessState();
      VM.scheduler().suspendProcess(Recv);
      VM.scheduler().yieldProcess(Recv); // clears the running flag
      FlagBlocked = true;
      return PrimResult::Success;
    }
    VM.scheduler().suspendProcess(Recv);
    return Replace(Recv);
  }

  case PrimTerminateProcess: {
    if (!Recv.isPointer() || Om.classOf(Recv) != K.ClassProcess)
      return PrimResult::Fail;
    if (Recv == Roots.ActiveProcess) {
      Finished = true;
      return PrimResult::Success;
    }
    VM.scheduler().terminateProcess(Recv);
    return Replace(Recv);
  }

  case PrimYield: {
    if (Roots.ActiveProcess.isNull())
      return Replace(Recv); // Driver doIt: yield is a no-op.
    FlagYield = true;
    return Replace(Recv);
  }

  /// --- semaphores -------------------------------------------------------
  case PrimSemaphoreSignal: {
    if (!Recv.isPointer() || !Om.isKindOf(Recv, K.ClassSemaphore))
      return PrimResult::Fail;
    VM.scheduler().semaphoreSignal(Recv);
    return Replace(Recv);
  }

  case PrimSemaphoreWait: {
    if (!Recv.isPointer() || !Om.isKindOf(Recv, K.ClassSemaphore))
      return PrimResult::Fail;
    if (Roots.ActiveProcess.isNull()) {
      vmError("semaphore wait outside a Smalltalk Process");
      return PrimResult::Success;
    }
    // Result (the receiver) must be on the stack before the context is
    // saved, so the process resumes with the right value.
    dropValues(Argc + 1);
    pushValue(Recv);
    writeBackIp();
    saveProcessState();
    if (VM.scheduler().semaphoreWait(Recv, Roots.ActiveProcess))
      FlagBlocked = true;
    return PrimResult::Success;
  }

  /// --- reorganized scheduler queries (paper §3.3) -------------------------
  case PrimCanRun: {
    Oop Proc = topValue(0);
    if (!Proc.isPointer() || Om.classOf(Proc) != K.ClassProcess)
      return PrimResult::Fail;
    return Replace(Om.boolFor(VM.scheduler().canRun(Proc)));
  }

  case PrimThisProcess:
    return Replace(Roots.ActiveProcess.isNull() ? Nil
                                                : Roots.ActiveProcess);

  /// --- I/O and clock ------------------------------------------------------
  case PrimDisplayShow: {
    Oop Text = topValue(0);
    if (!Text.isPointer() ||
        Text.object()->Format != ObjectFormat::Bytes)
      return PrimResult::Fail;
    VM.display().submit(ObjectModel::stringValue(Text));
    return Replace(Recv);
  }

  case PrimNextEvent: {
    InputEvent E;
    if (!VM.events().next(E))
      return Replace(Nil);
    writeBackIp();
    Oop Arr = OM.allocatePointers(K.ClassArray, 4);
    reloadFrame();
    if (Arr.isNull()) {
      vmError("OutOfMemoryError: nextEvent failed (heap ceiling reached)");
      return PrimResult::Success;
    }
    OM.storePointer(Arr, 0,
                    Oop::fromSmallInt(static_cast<intptr_t>(E.Type)));
    OM.storePointer(Arr, 1, Oop::fromSmallInt(E.A));
    OM.storePointer(Arr, 2, Oop::fromSmallInt(E.B));
    OM.storePointer(Arr, 3,
                    Oop::fromSmallInt(static_cast<intptr_t>(
                        E.TimeMicros / 1000)));
    return Replace(Arr);
  }

  case PrimMillisecondClock:
    return Replace(Oop::fromSmallInt(VM.millisecondClock()));

  /// --- tools ---------------------------------------------------------
  case PrimCompileInto: {
    // Compiler compile: sourceString into: aClass.
    Oop Src = topValue(1);
    Oop Target = topValue(0);
    if (!Src.isPointer() || Src.object()->Format != ObjectFormat::Bytes ||
        !Target.isPointer() || !Om.isKindOf(Target, K.ClassBehavior))
      return PrimResult::Fail;
    std::string Source = ObjectModel::stringValue(Src);
    writeBackIp();
    CompileResult R = compileMethodSource(Om, Target, Source);
    reloadFrame();
    if (!R.ok()) {
      VM.logError("compile error: " + R.Error);
      return Replace(Nil);
    }
    installMethod(Om, &VM.cache(), Target, R.Method);
    return Replace(ObjectMemory::fetchPointer(R.Method, MthSelector));
  }

  case PrimDecompile: {
    Oop Method = topValue(0);
    if (!Method.isPointer() ||
        Om.classOf(Method) != K.ClassCompiledMethod)
      return PrimResult::Fail;
    // Methods are old-space: the oop is stable across the GC point below.
    std::string Text = decompileMethod(Om, Method);
    writeBackIp();
    Oop Str = Om.makeString(Text);
    reloadFrame();
    if (Str.isNull()) {
      vmError("OutOfMemoryError: decompile failed (heap ceiling reached)");
      return PrimResult::Success;
    }
    return Replace(Str);
  }

  case PrimSubclass: {
    // receiver subclass: nameSymbol instanceVariableNames: namesString
    //          category: categoryString
    Oop NameO = topValue(2);
    Oop IvarsO = topValue(1);
    Oop CatO = topValue(0);
    if (!Recv.isPointer() || !Om.isKindOf(Recv, K.ClassBehavior) ||
        !NameO.isPointer() ||
        NameO.object()->Format != ObjectFormat::Bytes ||
        !IvarsO.isPointer() ||
        IvarsO.object()->Format != ObjectFormat::Bytes ||
        !CatO.isPointer() || CatO.object()->Format != ObjectFormat::Bytes)
      return PrimResult::Fail;
    std::string Name = ObjectModel::stringValue(NameO);
    if (Name.empty())
      return PrimResult::Fail;
    // Space-separated instance variable names.
    std::vector<std::string> Ivars;
    std::string Cur;
    for (char C : ObjectModel::stringValue(IvarsO)) {
      if (C == ' ') {
        if (!Cur.empty())
          Ivars.push_back(Cur);
        Cur.clear();
      } else {
        Cur += C;
      }
    }
    if (!Cur.empty())
      Ivars.push_back(Cur);
    std::string Category = ObjectModel::stringValue(CatO);
    // Byte-indexable superclasses cannot gain named fields.
    if (Om.kindOf(Recv) == ClassKind::IdxBytes && !Ivars.empty())
      return PrimResult::Fail;
    // Redefinition replaces the binding (methods of the old class keep
    // working for existing instances — Smalltalk-80's becomeless story).
    writeBackIp();
    Oop Cls = Om.makeClass(Recv, Name, Om.kindOf(Recv), Ivars, Category);
    Om.globalPut(Name, Cls);
    // Fresh classes get an empty organization so the browser works.
    reloadFrame();
    return Replace(Cls);
  }

  /// --- host coupling and VM services ------------------------------------
  case PrimHostSignal: {
    Oop IdO = topValue(0);
    if (!IdO.isSmallInt())
      return PrimResult::Fail;
    VM.hostSignal(static_cast<unsigned>(IdO.smallInt()));
    return Replace(Recv);
  }

  case PrimForceScavenge: {
    writeBackIp();
    OM.scavengeNow();
    reloadFrame();
    return Replace(Om.nil());
  }

  case PrimFullGC: {
    writeBackIp();
    OM.fullCollect();
    reloadFrame();
    return Replace(Om.nil());
  }

  case PrimLowSpaceSemaphore: {
    // receiver lowSpaceSemaphore: aSemaphoreOrNil.
    Oop Sem = topValue(0);
    if (Sem == Nil) {
      VM.setLowSpaceSemaphore(Oop());
      return Replace(Recv);
    }
    if (!Sem.isPointer() || !Om.isKindOf(Sem, K.ClassSemaphore))
      return PrimResult::Fail;
    VM.setLowSpaceSemaphore(Sem);
    return Replace(Recv);
  }

  case PrimErrorReport: {
    Oop Text = topValue(0);
    std::string Msg = Text.isPointer() &&
                              Text.object()->Format == ObjectFormat::Bytes
                          ? ObjectModel::stringValue(Text)
                          : Om.describe(Text);
    vmError(Om.describe(Recv) + " error: " + Msg);
    return PrimResult::Success;
  }

  case PrimPerformWith: {
    // receiver perform: selector withArguments: argArray.
    Oop Sel = topValue(1);
    Oop Arr = topValue(0);
    if (!Sel.isPointer() || Om.classOf(Sel) != K.ClassSymbol ||
        !Arr.isPointer() || Om.classOf(Arr) != K.ClassArray)
      return PrimResult::Fail;
    uint32_t N = Arr.object()->SlotCount;
    // The selector and argument array leave the stack (-2) and the
    // arguments join it (+N); the frame must fit the final depth.
    if (SpVal - 2 + static_cast<intptr_t>(N) >=
        static_cast<intptr_t>(CtxH->SlotCount))
      return PrimResult::Fail; // not enough frame room
    dropValues(2); // receiver stays; push args from the array
    for (uint32_t I = 0; I < N; ++I)
      pushValue(Arr.object()->slots()[I]);
    // Special selectors have no ordinary method behind them (the inline
    // path *is* the implementation); route them the same way a compiled
    // special send would go.
    if (N == 1) {
      for (size_t S = 0;
           S < static_cast<size_t>(SpecialSelector::NumSpecialSelectors);
           ++S) {
        if (K.SpecialSelectors[S] == Sel) {
          doSpecialSend(static_cast<SpecialSelector>(S));
          return PrimResult::Success;
        }
      }
    }
    doSend(Sel, N, /*Super=*/false);
    return PrimResult::Success;
  }

  default:
    return PrimResult::Fail;
  }
}
