//===-- vm/FreeContextList.h - Free stack-frame lists -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The free context list: "BS maintains a list of unused stack frames,
/// because it is more efficient to reuse one than to allocate and
/// initialize a new one" (paper §3.2). Profiling an early MS revealed that
/// serializing access to this list was a bottleneck; replicating it
/// per-interpreter cut the worst-case overhead from 160% to 65%.
///
/// Both policies are provided so bench_free_contexts can reproduce that
/// result. Lists hold oops of *dead, never-escaped* contexts; because a
/// scavenge would otherwise treat stale entries as garbage roots, every
/// list is flushed at the start of each scavenge (pre-scavenge hook).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_FREECONTEXTLIST_H
#define MST_VM_FREECONTEXTLIST_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "objmem/Oop.h"
#include "obs/Telemetry.h"
#include "vkernel/SpinLock.h"

namespace mst {

/// Which free-context organization the VM uses.
enum class FreeContextKind : uint8_t {
  /// One list shared by all interpreters behind a spin lock — the early-MS
  /// bottleneck.
  Shared,
  /// One list per interpreter — the published fix.
  Replicated,
};

/// The pool of reusable context objects.
class FreeContextPool {
public:
  FreeContextPool(FreeContextKind Kind, unsigned NumInterpreters,
                  bool LocksEnabled);

  FreeContextKind kind() const { return Kind; }

  /// \returns a recycled context with at least \p Slots body slots, or the
  /// null oop when the matching bin is empty. \p InterpId selects the
  /// replica under the Replicated policy.
  Oop take(unsigned InterpId, uint32_t Slots);

  /// Returns a dead context to the pool. The caller guarantees it is
  /// unreferenced (never escaped, just returned from).
  void give(unsigned InterpId, Oop Ctx);

  /// Empties every list. Runs as a pre-scavenge hook: recycled contexts
  /// are dead objects and must not survive into the next GC cycle.
  void flushAll();

  uint64_t reuses() const { return Reuses.value(); }
  uint64_t returns() const { return Returns.value(); }

private:
  struct Bins {
    explicit Bins(bool LocksEnabled) : Lock(LocksEnabled, "freectx") {}
    SpinLock Lock;
    std::vector<Oop> Small;
    std::vector<Oop> Large;
  };

  Bins &binsFor(unsigned InterpId) {
    return Kind == FreeContextKind::Replicated ? *PerInterp[InterpId]
                                               : *PerInterp[0];
  }

  FreeContextKind Kind;
  std::vector<std::unique_ptr<Bins>> PerInterp; // 1 or N
  Counter Reuses{"freectx.reuses"};
  Counter Returns{"freectx.returns"};
};

} // namespace mst

#endif // MST_VM_FREECONTEXTLIST_H
