//===-- vm/ObjectModel.cpp - Classes, layouts, well-known objects ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/ObjectModel.h"

#include <cstring>

#include "support/Assert.h"

using namespace mst;

ObjectModel::ObjectModel(ObjectMemory &OM)
    : OM(OM), Symbols(OM.config().MpSupport),
      DictWriteLock(OM.config().MpSupport, "dictwrite") {}

bool ObjectModel::isKindOf(Oop O, Oop Cls) const {
  for (Oop C = classOf(O); C != K.NilObj && !C.isNull();
       C = ObjectMemory::fetchPointer(C, ClsSuperclass))
    if (C == Cls)
      return true;
  return false;
}

/// --- Bootstrap -------------------------------------------------------------

Oop ObjectModel::allocClassShell(Oop Metaclass) {
  return OM.allocateOldPointers(Metaclass, ClassSlotCount);
}

void ObjectModel::fillClass(Oop Cls, Oop Superclass, Oop NameSym,
                            intptr_t InstSpec, Oop InstVarNames,
                            const std::string &Category) {
  OM.storePointer(Cls, ClsSuperclass, Superclass);
  // Method dictionaries need the kernel classes themselves; they are
  // attached by the caller (bootstrap step 6, or makeClass).
  OM.storePointer(Cls, ClsMethodDict, K.NilObj);
  OM.storePointer(Cls, ClsInstSpec, Oop::fromSmallInt(InstSpec));
  OM.storePointer(Cls, ClsName, NameSym);
  OM.storePointer(Cls, ClsInstVarNames, InstVarNames);
  OM.storePointer(Cls, ClsOrganization, K.NilObj);
  OM.storePointer(Cls, ClsCategory,
                  Category.empty() ? K.NilObj : makeString(Category, true));
  OM.storePointer(Cls, ClsComment, K.NilObj);
}

namespace {
/// A class created before symbols exist; finished later.
struct PendingClass {
  Oop Cls;
  const char *Name;
  std::vector<const char *> OwnIvars;
  const char *Category;
};
} // namespace

void ObjectModel::initCore() {
  // 1. nil first: everything else is filled with it.
  K.NilObj = OM.allocateOldPointers(Oop(), 0);
  OM.setNil(K.NilObj);

  // 2. The metaclass kernel, created by hand because makeClass needs it.
  //    Each entry: class shell + metaclass shell; classes are instances of
  //    their metaclasses; metaclasses are instances of Metaclass.
  auto NewShellPair = [this](Oop &ClsOut) {
    Oop Meta = OM.allocateOldPointers(Oop(), ClassSlotCount);
    ClsOut = OM.allocateOldPointers(Meta, ClassSlotCount);
    return Meta;
  };

  Oop MetaObject = NewShellPair(K.ClassObject);
  Oop MetaBehavior = NewShellPair(K.ClassBehavior);
  Oop MetaClassCls = NewShellPair(K.ClassClass);
  Oop MetaMetaclass = NewShellPair(K.ClassMetaclass);

  // Metaclasses are instances of Metaclass.
  for (Oop Meta : {MetaObject, MetaBehavior, MetaClassCls, MetaMetaclass})
    Meta.object()->setClassOop(K.ClassMetaclass);

  std::vector<PendingClass> Pending;
  auto Defer = [&Pending](Oop Cls, const char *Name,
                          std::vector<const char *> OwnIvars,
                          const char *Category) {
    Pending.push_back({Cls, Name, std::move(OwnIvars), Category});
  };

  const intptr_t ClassSpec = encodeInstSpec(ClassKind::Fixed, ClassSlotCount);
  const char *BehaviorIvars[] = {"superclass", "methodDict", "instSpec",
                                 "name",       "instVarNames", "organization",
                                 "category",   "comment"};

  // Fill the kernel-four (names and ivar arrays come in step 5).
  fillClass(K.ClassObject, K.NilObj, K.NilObj,
            encodeInstSpec(ClassKind::Fixed, 0), K.NilObj, "");
  fillClass(K.ClassBehavior, K.ClassObject, K.NilObj, ClassSpec, K.NilObj,
            "");
  fillClass(K.ClassClass, K.ClassBehavior, K.NilObj, ClassSpec, K.NilObj,
            "");
  fillClass(K.ClassMetaclass, K.ClassBehavior, K.NilObj, ClassSpec, K.NilObj,
            "");
  Defer(K.ClassObject, "Object", {}, "Kernel-Objects");
  Defer(K.ClassBehavior, "Behavior",
        std::vector<const char *>(BehaviorIvars, BehaviorIvars + 8),
        "Kernel-Classes");
  Defer(K.ClassClass, "Class", {}, "Kernel-Classes");
  Defer(K.ClassMetaclass, "Metaclass", {}, "Kernel-Classes");

  // Metaclass chains: "Object class" inherits from Class; the others chain
  // along their class's superclass chain, as in Smalltalk-80.
  fillClass(MetaObject, K.ClassClass, K.NilObj, ClassSpec, K.NilObj, "");
  fillClass(MetaBehavior, MetaObject, K.NilObj, ClassSpec, K.NilObj, "");
  fillClass(MetaClassCls, MetaBehavior, K.NilObj, ClassSpec, K.NilObj, "");
  fillClass(MetaMetaclass, MetaBehavior, K.NilObj, ClassSpec, K.NilObj, "");

  // 3. Classes needed before symbols work: the String/Symbol chain and
  //    Array (instance-variable-name arrays).
  auto NewKernelClass = [&](Oop Super, ClassKind Kind, uint32_t Fixed,
                            const char *Name,
                            std::vector<const char *> OwnIvars,
                            const char *Category) {
    Oop Meta = OM.allocateOldPointers(K.ClassMetaclass, ClassSlotCount);
    Oop SuperMeta =
        Super == K.NilObj ? K.ClassClass : Super.object()->classOop();
    fillClass(Meta, SuperMeta, K.NilObj, ClassSpec, K.NilObj, "");
    Oop Cls = OM.allocateOldPointers(Meta, ClassSlotCount);
    fillClass(Cls, Super, K.NilObj, encodeInstSpec(Kind, Fixed), K.NilObj,
              "");
    Defer(Cls, Name, std::move(OwnIvars), Category);
    return Cls;
  };

  K.ClassCollection = NewKernelClass(K.ClassObject, ClassKind::Fixed, 0,
                                     "Collection", {}, "Collections");
  K.ClassSequenceableCollection =
      NewKernelClass(K.ClassCollection, ClassKind::Fixed, 0,
                     "SequenceableCollection", {}, "Collections");
  K.ClassArrayedCollection =
      NewKernelClass(K.ClassSequenceableCollection, ClassKind::Fixed, 0,
                     "ArrayedCollection", {}, "Collections");
  K.ClassString = NewKernelClass(K.ClassArrayedCollection,
                                 ClassKind::IdxBytes, 0, "String", {},
                                 "Collections-Text");
  K.ClassSymbol = NewKernelClass(K.ClassString, ClassKind::IdxBytes, 0,
                                 "Symbol", {}, "Collections-Text");
  K.ClassArray = NewKernelClass(K.ClassArrayedCollection,
                                ClassKind::IdxPointers, 0, "Array", {},
                                "Collections");

  // 4. Symbols now work.
  Symbols.setSymbolClass(K.ClassSymbol);

  // 5. The rest of the kernel classes, with symbols available.
  K.ClassUndefinedObject = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, 0, "UndefinedObject", {}, "Kernel");
  K.ClassBoolean =
      NewKernelClass(K.ClassObject, ClassKind::Fixed, 0, "Boolean", {},
                     "Kernel");
  K.ClassTrue = NewKernelClass(K.ClassBoolean, ClassKind::Fixed, 0, "True",
                               {}, "Kernel");
  K.ClassFalse = NewKernelClass(K.ClassBoolean, ClassKind::Fixed, 0,
                                "False", {}, "Kernel");
  K.ClassMagnitude = NewKernelClass(K.ClassObject, ClassKind::Fixed, 0,
                                    "Magnitude", {}, "Kernel-Numbers");
  K.ClassNumber = NewKernelClass(K.ClassMagnitude, ClassKind::Fixed, 0,
                                 "Number", {}, "Kernel-Numbers");
  K.ClassInteger = NewKernelClass(K.ClassNumber, ClassKind::Fixed, 0,
                                  "Integer", {}, "Kernel-Numbers");
  K.ClassSmallInteger =
      NewKernelClass(K.ClassInteger, ClassKind::Fixed, 0, "SmallInteger",
                     {}, "Kernel-Numbers");
  K.ClassCharacter =
      NewKernelClass(K.ClassMagnitude, ClassKind::Fixed, CharacterSlotCount,
                     "Character", {"value"}, "Kernel-Text");
  K.ClassByteArray =
      NewKernelClass(K.ClassArrayedCollection, ClassKind::IdxBytes, 0,
                     "ByteArray", {}, "Collections");
  K.ClassMethodDictionary = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, MethodDictSlotCount,
      "MethodDictionary", {"tally", "table"}, "Kernel-Methods");
  K.ClassCompiledMethod = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, MethodSlotCount, "CompiledMethod",
      {"numArgs", "numTemps", "primitive", "frameSize", "selector",
       "literals", "bytecodes", "sourceText", "methodClass"},
      "Kernel-Methods");
  K.ClassMethodContext = NewKernelClass(
      K.ClassObject, ClassKind::IdxPointers, CtxFixedSlots, "MethodContext",
      {"sender", "ip", "sp", "method", "receiver"}, "Kernel-Contexts");
  K.ClassBlockContext = NewKernelClass(
      K.ClassObject, ClassKind::IdxPointers, BlkFixedSlots, "BlockContext",
      {"caller", "ip", "sp", "numArgs", "initialIP", "home"},
      "Kernel-Contexts");
  K.ClassLink = NewKernelClass(K.ClassObject, ClassKind::Fixed, 1, "Link",
                               {"nextLink"}, "Kernel-Processes");
  K.ClassProcess = NewKernelClass(
      K.ClassLink, ClassKind::Fixed, ProcessSlotCount, "Process",
      {"suspendedContext", "priority", "myList", "name", "running",
       "accumulatedMicroseconds"},
      "Kernel-Processes");
  K.ClassLinkedList = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, LinkedListSlotCount, "LinkedList",
      {"firstLink", "lastLink"}, "Kernel-Processes");
  K.ClassSemaphore = NewKernelClass(
      K.ClassLinkedList, ClassKind::Fixed, SemaphoreSlotCount, "Semaphore",
      {"excessSignals"}, "Kernel-Processes");
  K.ClassProcessorScheduler = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, SchedulerSlotCount,
      "ProcessorScheduler", {"quiescentProcessLists", "activeProcess"},
      "Kernel-Processes");
  K.ClassAssociation = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, AssociationSlotCount, "Association",
      {"key", "value"}, "Kernel-Objects");
  K.ClassSystemDictionary = NewKernelClass(
      K.ClassObject, ClassKind::Fixed, SystemDictSlotCount,
      "SystemDictionary", {"tally", "table"}, "Kernel-Objects");
  K.ClassMessage = NewKernelClass(K.ClassObject, ClassKind::Fixed,
                                  MessageSlotCount, "Message",
                                  {"selector", "arguments"}, "Kernel");

  // 6. Finish every deferred class: intern its name, build the full
  //    instance-variable-name array (inherited names first).
  for (const PendingClass &P : Pending) {
    OM.storePointer(P.Cls, ClsName, intern(P.Name));
    OM.storePointer(P.Cls, ClsMethodDict, mdNew());
    OM.storePointer(P.Cls, ClsCategory, makeString(P.Category, true));
    // Inherited ivars.
    std::vector<Oop> Names;
    Oop Super = ObjectMemory::fetchPointer(P.Cls, ClsSuperclass);
    if (Super != K.NilObj) {
      Oop SuperNames = ObjectMemory::fetchPointer(Super, ClsInstVarNames);
      if (SuperNames != K.NilObj) {
        ObjectHeader *H = SuperNames.object();
        for (uint32_t I = 0; I < H->SlotCount; ++I)
          Names.push_back(H->slots()[I]);
      }
    }
    for (const char *N : P.OwnIvars)
      Names.push_back(intern(N));
    assert(Names.size() == fixedFieldsOf(P.Cls) &&
           "instance variable names disagree with the fixed field count");
    OM.storePointer(P.Cls, ClsInstVarNames, makeArray(Names, /*Old=*/true));
    // Metaclass name: "<Name> class".
    Oop Meta = P.Cls.object()->classOop();
    OM.storePointer(Meta, ClsName,
                    intern(std::string(P.Name) + " class"));
    OM.storePointer(Meta, ClsInstVarNames, K.NilObj);
    OM.storePointer(Meta, ClsMethodDict, mdNew());
  }

  // Fix nil's class now that UndefinedObject exists.
  K.NilObj.object()->setClassOop(K.ClassUndefinedObject);

  // 7. true and false.
  K.TrueObj = OM.allocateOldPointers(K.ClassTrue, 0);
  K.FalseObj = OM.allocateOldPointers(K.ClassFalse, 0);

  // 8. The character table.
  K.CharacterTable = OM.allocateOldPointers(K.ClassArray, 256);
  for (uint32_t C = 0; C < 256; ++C) {
    Oop Ch = OM.allocateOldPointers(K.ClassCharacter, CharacterSlotCount);
    OM.storePointer(Ch, CharValue, Oop::fromSmallInt(C));
    OM.storePointer(K.CharacterTable, C, Ch);
  }

  // 9. The system dictionary and the scheduler singleton.
  K.SmalltalkDict =
      OM.allocateOldPointers(K.ClassSystemDictionary, SystemDictSlotCount);
  OM.storePointer(K.SmalltalkDict, SysTally, Oop::fromSmallInt(0));
  OM.storePointer(K.SmalltalkDict, SysTable,
                  OM.allocateOldPointers(K.ClassArray, 128));

  K.Processor = OM.allocateOldPointers(K.ClassProcessorScheduler,
                                       SchedulerSlotCount);
  Oop Lists = OM.allocateOldPointers(K.ClassArray, NumPriorities);
  for (uint32_t P = 0; P < NumPriorities; ++P) {
    Oop L = OM.allocateOldPointers(K.ClassLinkedList, LinkedListSlotCount);
    OM.storePointer(Lists, P, L);
  }
  OM.storePointer(K.Processor, SchedQuiescentProcessLists, Lists);
  OM.storePointer(K.Processor, SchedActiveProcess, K.NilObj);

  // 10. Globals: every kernel class by name, plus Smalltalk and Processor.
  for (const PendingClass &P : Pending)
    globalPut(P.Name, P.Cls);
  globalPut("Smalltalk", K.SmalltalkDict);
  globalPut("Processor", K.Processor);

  // 11. Special selectors and VM-known selectors.
  for (size_t I = 0;
       I < static_cast<size_t>(SpecialSelector::NumSpecialSelectors); ++I)
    K.SpecialSelectors[I] =
        intern(specialSelectorName(static_cast<SpecialSelector>(I)));
  K.SelDoesNotUnderstand = intern("doesNotUnderstand:");

  // 12. Root registration.
  OM.addRootWalker([this](const ObjectMemory::OopVisitor &V) {
    K.visitRoots(V);
    Symbols.visitRoots(V);
  });
}

/// --- Classes -----------------------------------------------------------

Oop ObjectModel::makeClass(Oop Superclass, const std::string &Name,
                           ClassKind Kind,
                           const std::vector<std::string> &InstVarNames,
                           const std::string &Category) {
  // Inherit layout.
  uint32_t Fixed = 0;
  std::vector<Oop> Names;
  if (Superclass != K.NilObj) {
    Fixed = fixedFieldsOf(Superclass);
    Oop SuperNames =
        ObjectMemory::fetchPointer(Superclass, ClsInstVarNames);
    if (SuperNames != K.NilObj) {
      ObjectHeader *H = SuperNames.object();
      for (uint32_t I = 0; I < H->SlotCount; ++I)
        Names.push_back(H->slots()[I]);
    }
    assert((kindOf(Superclass) == ClassKind::Fixed ||
            kindOf(Superclass) == Kind) &&
           "cannot change an indexable layout in a subclass");
  }
  for (const std::string &N : InstVarNames)
    Names.push_back(intern(N));
  Fixed += static_cast<uint32_t>(InstVarNames.size());

  const intptr_t ClassSpec = encodeInstSpec(ClassKind::Fixed, ClassSlotCount);
  Oop Meta = OM.allocateOldPointers(K.ClassMetaclass, ClassSlotCount);
  Oop SuperMeta = Superclass == K.NilObj ? K.ClassClass
                                         : Superclass.object()->classOop();
  fillClass(Meta, SuperMeta, intern(Name + " class"), ClassSpec, K.NilObj,
            Category);
  Oop Cls = OM.allocateOldPointers(Meta, ClassSlotCount);
  fillClass(Cls, Superclass, intern(Name), encodeInstSpec(Kind, Fixed),
            makeArray(Names, /*Old=*/true), Category);
  OM.storePointer(Cls, ClsMethodDict, mdNew());
  OM.storePointer(Meta, ClsMethodDict, mdNew());
  return Cls;
}

std::string ObjectModel::className(Oop Cls) const {
  Oop Name = ObjectMemory::fetchPointer(Cls, ClsName);
  if (Name == K.NilObj)
    return "<anonymous class>";
  return stringValue(Name);
}

Oop ObjectModel::instantiate(Oop Cls, uint32_t IndexableSize, bool Old) {
  intptr_t Spec = ObjectMemory::fetchPointer(Cls, ClsInstSpec).smallInt();
  uint32_t Fixed = instSpecFixed(Spec);
  switch (instSpecKind(Spec)) {
  case ClassKind::Fixed:
    assert(IndexableSize == 0 && "fixed class with indexable size");
    return Old ? OM.allocateOldPointers(Cls, Fixed)
               : OM.allocatePointers(Cls, Fixed);
  case ClassKind::IdxPointers:
    return Old ? OM.allocateOldPointers(Cls, Fixed + IndexableSize)
               : OM.allocatePointers(Cls, Fixed + IndexableSize);
  case ClassKind::IdxBytes:
    assert(Fixed == 0 && "byte classes cannot have named fields");
    return Old ? OM.allocateOldBytes(Cls, IndexableSize)
               : OM.allocateBytes(Cls, IndexableSize);
  }
  MST_UNREACHABLE("bad class kind");
}

/// --- Strings ------------------------------------------------------------

Oop ObjectModel::makeString(const std::string &S, bool Old) {
  Oop Str = Old
                ? OM.allocateOldBytes(K.ClassString,
                                      static_cast<uint32_t>(S.size()))
                : OM.allocateBytes(K.ClassString,
                                   static_cast<uint32_t>(S.size()));
  std::memcpy(Str.object()->bytes(), S.data(), S.size());
  return Str;
}

Oop ObjectModel::makeByteArray(const std::vector<uint8_t> &Bytes, bool Old) {
  Oop Arr = Old ? OM.allocateOldBytes(K.ClassByteArray,
                                      static_cast<uint32_t>(Bytes.size()))
                : OM.allocateBytes(K.ClassByteArray,
                                   static_cast<uint32_t>(Bytes.size()));
  std::memcpy(Arr.object()->bytes(), Bytes.data(), Bytes.size());
  return Arr;
}

std::string ObjectModel::stringValue(Oop S) {
  ObjectHeader *H = S.object();
  assert(H->Format == ObjectFormat::Bytes && "not a byte object");
  return std::string(reinterpret_cast<const char *>(H->bytes()),
                     H->ByteLength);
}

/// --- Arrays ---------------------------------------------------------------

Oop ObjectModel::makeArray(const std::vector<Oop> &Elements, bool Old) {
  assert(Old && "new-space arrays must be built element-wise with handles");
  Oop Arr = OM.allocateOldPointers(K.ClassArray,
                                   static_cast<uint32_t>(Elements.size()));
  for (size_t I = 0; I < Elements.size(); ++I)
    OM.storePointer(Arr, static_cast<uint32_t>(I), Elements[I]);
  return Arr;
}

Oop ObjectModel::makeAssociation(Oop Key, Oop Value, bool Old) {
  assert(Old && "runtime associations are made by Smalltalk code");
  Oop A = OM.allocateOldPointers(K.ClassAssociation, AssociationSlotCount);
  OM.storePointer(A, AssocKey, Key);
  OM.storePointer(A, AssocValue, Value);
  return A;
}

/// --- Method dictionaries ----------------------------------------------

Oop ObjectModel::mdNew(uint32_t Capacity) {
  assert((Capacity & (Capacity - 1)) == 0 && "capacity must be power of 2");
  Oop Md = OM.allocateOldPointers(K.ClassMethodDictionary,
                                  MethodDictSlotCount);
  OM.storePointer(Md, MdTally, Oop::fromSmallInt(0));
  OM.storePointer(Md, MdTable,
                  OM.allocateOldPointers(K.ClassArray, Capacity * 2));
  return Md;
}

Oop ObjectModel::mdLookup(Oop Md, Oop Selector) const {
  Oop Table = ObjectMemory::fetchPointer(Md, MdTable);
  ObjectHeader *T = Table.object();
  uint32_t Cap = T->SlotCount / 2;
  uint32_t Mask = Cap - 1;
  uint32_t I = static_cast<uint32_t>(Selector.object()->Hash) & Mask;
  for (uint32_t Probes = 0; Probes < Cap; ++Probes) {
    Oop Key = T->slots()[2 * I];
    if (Key == Selector)
      return T->slots()[2 * I + 1];
    if (Key == K.NilObj)
      return Oop();
    I = (I + 1) & Mask;
  }
  return Oop();
}

void ObjectModel::mdAddMethod(Oop Cls, Oop Selector, Oop Method) {
  SpinLockGuard Guard(DictWriteLock);
  Oop Md = ObjectMemory::fetchPointer(Cls, ClsMethodDict);
  Oop Table = ObjectMemory::fetchPointer(Md, MdTable);
  uint32_t Cap = Table.object()->SlotCount / 2;
  intptr_t Tally = ObjectMemory::fetchPointer(Md, MdTally).smallInt();

  // Grow at 75% load: build a fresh table and publish it with one store so
  // lock-free readers always see a consistent table.
  if ((Tally + 1) * 4 > static_cast<intptr_t>(Cap) * 3) {
    uint32_t NewCap = Cap * 2;
    Oop NewTable = OM.allocateOldPointers(K.ClassArray, NewCap * 2);
    ObjectHeader *OldT = Table.object();
    for (uint32_t I = 0; I < Cap; ++I) {
      Oop Key = OldT->slots()[2 * I];
      if (Key == K.NilObj)
        continue;
      uint32_t Mask = NewCap - 1;
      uint32_t J = static_cast<uint32_t>(Key.object()->Hash) & Mask;
      while (ObjectMemory::fetchPointer(NewTable, 2 * J) != K.NilObj)
        J = (J + 1) & Mask;
      OM.storePointer(NewTable, 2 * J, Key);
      OM.storePointer(NewTable, 2 * J + 1, OldT->slots()[2 * I + 1]);
    }
    OM.storePointer(Md, MdTable, NewTable);
    Table = NewTable;
    Cap = NewCap;
  }

  ObjectHeader *T = Table.object();
  uint32_t Mask = Cap - 1;
  uint32_t I = static_cast<uint32_t>(Selector.object()->Hash) & Mask;
  for (;;) {
    Oop Key = T->slots()[2 * I];
    if (Key == Selector) {
      OM.storePointer(Table, 2 * I + 1, Method); // Redefinition.
      return;
    }
    if (Key == K.NilObj) {
      // Publish the method before the selector so a concurrent reader
      // never sees the selector with a missing method.
      OM.storePointer(Table, 2 * I + 1, Method);
      std::atomic_thread_fence(std::memory_order_release);
      OM.storePointer(Table, 2 * I, Selector);
      OM.storePointer(Md, MdTally, Oop::fromSmallInt(Tally + 1));
      return;
    }
    I = (I + 1) & Mask;
  }
}

void ObjectModel::mdForEach(
    Oop Md, const std::function<void(Oop, Oop)> &Fn) const {
  Oop Table = ObjectMemory::fetchPointer(Md, MdTable);
  ObjectHeader *T = Table.object();
  uint32_t Cap = T->SlotCount / 2;
  for (uint32_t I = 0; I < Cap; ++I) {
    Oop Key = T->slots()[2 * I];
    if (Key != K.NilObj)
      Fn(Key, T->slots()[2 * I + 1]);
  }
}

ObjectModel::LookupResult ObjectModel::lookupMethod(Oop Cls,
                                                    Oop Selector) const {
  for (Oop C = Cls; C != K.NilObj && !C.isNull();
       C = ObjectMemory::fetchPointer(C, ClsSuperclass)) {
    Oop Md = ObjectMemory::fetchPointer(C, ClsMethodDict);
    if (Md == K.NilObj)
      continue;
    Oop M = mdLookup(Md, Selector);
    if (!M.isNull())
      return {M, C};
  }
  return {Oop(), Oop()};
}

/// --- Globals ------------------------------------------------------------

Oop ObjectModel::globalAssociation(const std::string &Name,
                                   bool CreateIfAbsent) {
  Oop Key = intern(Name);
  // Lock-free read path.
  {
    Oop Table = ObjectMemory::fetchPointer(K.SmalltalkDict, SysTable);
    ObjectHeader *T = Table.object();
    uint32_t Cap = T->SlotCount;
    uint32_t I = static_cast<uint32_t>(Key.object()->Hash) % Cap;
    for (uint32_t Probes = 0; Probes < Cap; ++Probes) {
      Oop Assoc = ObjectMemory::fetchPointer(Table, I);
      if (Assoc == K.NilObj)
        break;
      if (ObjectMemory::fetchPointer(Assoc, AssocKey) == Key)
        return Assoc;
      I = (I + 1) % Cap;
    }
  }
  if (!CreateIfAbsent)
    return Oop();

  SpinLockGuard Guard(DictWriteLock);
  Oop Table = ObjectMemory::fetchPointer(K.SmalltalkDict, SysTable);
  uint32_t Cap = Table.object()->SlotCount;
  intptr_t Tally =
      ObjectMemory::fetchPointer(K.SmalltalkDict, SysTally).smallInt();
  if ((Tally + 1) * 4 > static_cast<intptr_t>(Cap) * 3) {
    uint32_t NewCap = Cap * 2;
    Oop NewTable = OM.allocateOldPointers(K.ClassArray, NewCap);
    ObjectHeader *OldT = Table.object();
    for (uint32_t I = 0; I < Cap; ++I) {
      Oop Assoc = OldT->slots()[I];
      if (Assoc == K.NilObj)
        continue;
      Oop AKey = ObjectMemory::fetchPointer(Assoc, AssocKey);
      uint32_t J = static_cast<uint32_t>(AKey.object()->Hash) % NewCap;
      while (ObjectMemory::fetchPointer(NewTable, J) != K.NilObj)
        J = (J + 1) % NewCap;
      OM.storePointer(NewTable, J, Assoc);
    }
    OM.storePointer(K.SmalltalkDict, SysTable, NewTable);
    Table = NewTable;
    Cap = NewCap;
  }
  ObjectHeader *T = Table.object();
  uint32_t I = static_cast<uint32_t>(Key.object()->Hash) % Cap;
  for (;;) {
    Oop Assoc = T->slots()[I];
    if (Assoc == K.NilObj) {
      Oop NewAssoc = makeAssociation(Key, K.NilObj, /*Old=*/true);
      OM.storePointer(Table, I, NewAssoc);
      OM.storePointer(K.SmalltalkDict, SysTally,
                      Oop::fromSmallInt(Tally + 1));
      return NewAssoc;
    }
    if (ObjectMemory::fetchPointer(Assoc, AssocKey) == Key)
      return Assoc; // Raced with another writer.
    I = (I + 1) % Cap;
  }
}

Oop ObjectModel::globalAt(const std::string &Name) {
  Oop Assoc = globalAssociation(Name, /*CreateIfAbsent=*/false);
  return Assoc.isNull() ? Oop()
                        : ObjectMemory::fetchPointer(Assoc, AssocValue);
}

void ObjectModel::globalPut(const std::string &Name, Oop Value) {
  Oop Assoc = globalAssociation(Name, /*CreateIfAbsent=*/true);
  OM.storePointer(Assoc, AssocValue, Value);
}

void ObjectModel::globalsForEach(const std::function<void(Oop)> &Fn) {
  Oop Table = ObjectMemory::fetchPointer(K.SmalltalkDict, SysTable);
  ObjectHeader *T = Table.object();
  for (uint32_t I = 0; I < T->SlotCount; ++I) {
    Oop Assoc = T->slots()[I];
    if (Assoc != K.NilObj)
      Fn(Assoc);
  }
}

/// --- Debug ----------------------------------------------------------------

std::string ObjectModel::describe(Oop O) const {
  if (O.isNull())
    return "<null oop>";
  if (O.isSmallInt())
    return std::to_string(O.smallInt());
  Oop Cls = classOf(O);
  if (Cls == K.ClassSymbol)
    return "#" + stringValue(O);
  if (Cls == K.ClassString)
    return "'" + stringValue(O) + "'";
  if (Cls == K.ClassCharacter) {
    intptr_t V = ObjectMemory::fetchPointer(O, CharValue).smallInt();
    return std::string("$") + static_cast<char>(V);
  }
  if (O == K.NilObj)
    return "nil";
  if (O == K.TrueObj)
    return "true";
  if (O == K.FalseObj)
    return "false";
  if (Cls == K.ClassClass || Cls == K.ClassMetaclass ||
      isKindOf(O, K.ClassBehavior))
    return className(O);
  std::string Name = className(Cls);
  const char *Article =
      Name.find_first_of("AEIOU") == 0 ? "an " : "a ";
  return Article + Name;
}
