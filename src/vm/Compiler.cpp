//===-- vm/Compiler.cpp - Compilation driver --------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Compiler.h"

#include <cstdio>

#include "support/Assert.h"
#include "vm/CodeGen.h"
#include "vm/MethodCache.h"
#include "vm/Parser.h"

using namespace mst;

CompileResult mst::compileMethodSource(ObjectModel &Om, Oop Cls,
                                       const std::string &Source) {
  Parser P(Source);
  MethodNode M;
  if (!P.parseMethod(M))
    return {Oop(), P.errorMessage()};
  CodeGen Gen(Om, Cls);
  std::string Error;
  Oop Method = Gen.generate(M, Error);
  if (Method.isNull())
    return {Oop(), Error};
  return {Method, ""};
}

CompileResult mst::compileDoItSource(ObjectModel &Om, Oop Cls,
                                     const std::string &Source) {
  Parser P(Source);
  MethodNode M;
  if (!P.parseDoIt(M))
    return {Oop(), P.errorMessage()};
  CodeGen Gen(Om, Cls);
  std::string Error;
  Oop Method = Gen.generate(M, Error);
  if (Method.isNull())
    return {Oop(), Error};
  return {Method, ""};
}

void mst::installMethod(ObjectModel &Om, MethodCache *Cache, Oop Cls,
                        Oop Method) {
  Oop Selector = ObjectMemory::fetchPointer(Method, MthSelector);
  Om.mdAddMethod(Cls, Selector, Method);
  if (Cache)
    Cache->flushSelector(Selector);
}

Oop mst::mustCompile(ObjectModel &Om, MethodCache *Cache, Oop Cls,
                     const std::string &Source) {
  CompileResult R = compileMethodSource(Om, Cls, Source);
  if (!R.ok())
    panic("bootstrap compile error in " + Om.className(Cls) + ": " +
          R.Error + "\nsource:\n" + Source);
  installMethod(Om, Cache, Cls, R.Method);
  return R.Method;
}
