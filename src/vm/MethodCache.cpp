//===-- vm/MethodCache.cpp - Method lookup caches ---------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/MethodCache.h"

#include "support/Assert.h"
#include "vkernel/Delay.h"

using namespace mst;

void RwSpinLock::lockShared() {
  if (!Enabled)
    return;
  unsigned Spins = 0;
  for (;;) {
    int32_t S = State.load(std::memory_order_relaxed);
    if (S >= 0 &&
        State.compare_exchange_weak(S, S + 1, std::memory_order_acquire))
      return;
    if (++Spins >= 256) {
      Spins = 0;
      vkDelay(0);
    }
  }
}

void RwSpinLock::lockExclusive() {
  if (!Enabled)
    return;
  unsigned Spins = 0;
  for (;;) {
    int32_t Expected = 0;
    if (State.compare_exchange_weak(Expected, -1,
                                    std::memory_order_acquire))
      return;
    if (++Spins >= 256) {
      Spins = 0;
      vkDelay(0);
    }
  }
}

MethodCache::MethodCache(MethodCacheKind Kind, unsigned NumInterpreters,
                         bool LocksEnabled)
    : Kind(Kind), GlobalLock(LocksEnabled) {
  unsigned N = Kind == MethodCacheKind::Replicated ? NumInterpreters : 1;
  assert(N > 0 && "need at least one cache table");
  for (unsigned I = 0; I < N; ++I)
    Tables.push_back(std::make_unique<MethodCacheTable>());
}

bool MethodCache::lookup(unsigned InterpId, Oop Cls, Oop Selector,
                         Oop &Method, Oop &DefiningClass) {
  const MethodCacheTable::Entry *E = nullptr;
  if (Kind == MethodCacheKind::Replicated) {
    assert(InterpId < Tables.size() && "interpreter id out of range");
    E = Tables[InterpId]->lookup(Cls, Selector);
  } else {
    GlobalLock.lockShared();
    E = Tables[0]->lookup(Cls, Selector);
    if (E) {
      // Copy out under the read lock; the entry may be overwritten after
      // we release it.
      Method = E->Method;
      DefiningClass = E->DefiningClass;
      GlobalLock.unlockShared();
      Stats.Hits.add();
      return true;
    }
    GlobalLock.unlockShared();
    Stats.Misses.add();
    Stats.MissGlobal.add();
    return false;
  }
  if (E) {
    Method = E->Method;
    DefiningClass = E->DefiningClass;
    Stats.Hits.add();
    return true;
  }
  Stats.Misses.add();
  Stats.MissReplicated.add();
  return false;
}

void MethodCache::insert(unsigned InterpId, Oop Cls, Oop Selector,
                         Oop Method, Oop DefiningClass) {
  if (Kind == MethodCacheKind::Replicated) {
    Tables[InterpId]->insert(Cls, Selector, Method, DefiningClass);
    return;
  }
  GlobalLock.lockExclusive();
  Tables[0]->insert(Cls, Selector, Method, DefiningClass);
  GlobalLock.unlockExclusive();
}

void MethodCache::flushAll() {
  // Called with the world stopped (scavenge hook) or from the installer
  // thread; exclusive access either way.
  GlobalLock.lockExclusive();
  for (auto &T : Tables)
    T->clear();
  GlobalLock.unlockExclusive();
}

void MethodCache::flushSelector(Oop Selector) {
  GlobalLock.lockExclusive();
  for (auto &T : Tables)
    T->removeSelector(Selector);
  GlobalLock.unlockExclusive();
}
