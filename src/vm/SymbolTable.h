//===-- vm/SymbolTable.h - Interned symbols ---------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The global table of interned Symbols. Symbols are unique per spelling,
/// allocated in old space (they are permanent and must not move: selector
/// comparisons are identity comparisons throughout the VM), and the table
/// itself is serialized with a spin lock — interning is brief and
/// infrequent (only compilation and literal creation intern).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_SYMBOLTABLE_H
#define MST_VM_SYMBOLTABLE_H

#include <deque>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "objmem/Oop.h"
#include "vkernel/SpinLock.h"

namespace mst {

class ObjectMemory;

/// Table of interned Symbol oops, keyed by spelling.
class SymbolTable {
public:
  /// \param LocksEnabled false for the baseline-BS (no-MP) build.
  explicit SymbolTable(bool LocksEnabled) : Lock(LocksEnabled, "symtab") {}

  /// Sets the class used for new symbols. Called once during bootstrap.
  void setSymbolClass(Oop Cls) { SymbolClass = Cls; }

  /// \returns the unique Symbol oop for \p Name, creating it on first use.
  Oop intern(ObjectMemory &OM, const std::string &Name);

  /// \returns the symbol for \p Name, or the null oop if never interned.
  Oop lookup(const std::string &Name);

  /// Replaces the table contents with symbols loaded from a snapshot:
  /// clears everything, then adopts each (spelling, oop) pair. The oops
  /// must be old-space Symbol objects.
  void adoptLoadedSymbols(
      const std::vector<std::pair<std::string, Oop>> &Loaded);

  /// \returns the number of interned symbols.
  size_t size();

  /// Visits every symbol oop cell (root walking; symbols live in old space
  /// so cells never change today, but the walker keeps the design uniform).
  template <typename Visitor> void visitRoots(const Visitor &V) {
    for (Oop &Sym : Symbols)
      V(&Sym);
    V(&SymbolClass);
  }

private:
  SpinLock Lock;
  Oop SymbolClass;
  std::unordered_map<std::string, size_t> Index;
  std::deque<Oop> Symbols;
};

} // namespace mst

#endif // MST_VM_SYMBOLTABLE_H
