//===-- vm/MethodCache.h - Method lookup caches -----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The method-lookup cache. "A Smalltalk implementation performs a method
/// lookup very frequently; in typical interactive use, more than 10% of
/// the bytecodes interpreted require lookup. As a result, most Smalltalk
/// implementations rely heavily on software method-lookup caches" (paper
/// §3.2).
///
/// Two policies reproduce the paper's experience:
///  - **GlobalLocked**: one cache shared by every interpreter behind a
///    two-level locking scheme allowing multiple readers. MS tried this
///    first and "found that contention for the lock was causing it to run
///    much too slowly."
///  - **Replicated**: one cache per interpreter process — the fix. "The
///    drawback, of course, is that more overhead is involved ... because
///    it is replicated."
///
/// Entries hold oops; caches are flushed at every scavenge (objects move)
/// and on method installation (selectively, by selector).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_METHODCACHE_H
#define MST_VM_METHODCACHE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "objmem/Oop.h"
#include "obs/Telemetry.h"
#include "vkernel/SpinLock.h"

namespace mst {

/// Which cache organization the VM uses (Table 3: serialization vs
/// replication of the method cache).
enum class MethodCacheKind : uint8_t {
  GlobalLocked,
  Replicated,
};

/// A readers/writer spin lock: the "two-level locking scheme to allow
/// multiple readers" of the paper's first method-cache design.
class RwSpinLock {
public:
  explicit RwSpinLock(bool Enabled) : Enabled(Enabled) {}

  void lockShared();
  void unlockShared() {
    if (Enabled)
      State.fetch_sub(1, std::memory_order_release);
  }
  void lockExclusive();
  void unlockExclusive() {
    if (Enabled)
      State.store(0, std::memory_order_release);
  }

private:
  bool Enabled;
  /// >0: reader count; 0: free; -1: writer.
  std::atomic<int32_t> State{0};
};

/// One direct-mapped cache table: (class, selector) -> method.
class MethodCacheTable {
public:
  static constexpr uint32_t NumEntries = 1024; // power of two

  MethodCacheTable() { clear(); }

  struct Entry {
    Oop Class;
    Oop Selector;
    Oop Method;
    Oop DefiningClass;
  };

  /// \returns the matching entry or nullptr.
  const Entry *lookup(Oop Cls, Oop Selector) const {
    const Entry &E = Entries[indexFor(Cls, Selector)];
    if (E.Class == Cls && E.Selector == Selector)
      return &E;
    return nullptr;
  }

  /// Installs a lookup result.
  void insert(Oop Cls, Oop Selector, Oop Method, Oop DefiningClass) {
    Entries[indexFor(Cls, Selector)] = {Cls, Selector, Method,
                                        DefiningClass};
  }

  /// Empties the whole table (scavenge flush).
  void clear() {
    for (Entry &E : Entries)
      E = Entry();
  }

  /// Removes entries whose selector is \p Selector (method installation).
  void removeSelector(Oop Selector) {
    for (Entry &E : Entries)
      if (E.Selector == Selector)
        E = Entry();
  }

private:
  static uint32_t indexFor(Oop Cls, Oop Selector) {
    uintptr_t H = (Cls.bits() >> 4) ^ (Selector.bits() >> 4) * 2654435761u;
    return static_cast<uint32_t>(H) & (NumEntries - 1);
  }

  Entry Entries[NumEntries];
};

/// Counters for the cache benches, registered process-wide as
/// methodcache.hits / methodcache.misses, with misses additionally broken
/// down by cache kind. Exactly one per-kind counter is bumped alongside
/// every Misses bump, so methodcache.misses ==
/// methodcache.miss.replicated + methodcache.miss.global always holds —
/// the selector-keyed miss profile can cross-check against either.
struct MethodCacheStats {
  Counter Hits{"methodcache.hits"};
  Counter Misses{"methodcache.misses"};
  Counter MissReplicated{"methodcache.miss.replicated"};
  Counter MissGlobal{"methodcache.miss.global"};
};

/// The cache facade used by interpreters. Holds either one shared locked
/// table or one table per interpreter.
class MethodCache {
public:
  /// \param Kind cache organization.
  /// \param NumInterpreters table count for the Replicated policy.
  /// \param LocksEnabled false in the baseline-BS build.
  MethodCache(MethodCacheKind Kind, unsigned NumInterpreters,
              bool LocksEnabled);

  MethodCacheKind kind() const { return Kind; }

  /// Looks up (class, selector) on behalf of interpreter \p InterpId.
  /// \returns true on a hit, filling \p Method / \p DefiningClass.
  bool lookup(unsigned InterpId, Oop Cls, Oop Selector, Oop &Method,
              Oop &DefiningClass);

  /// Records a completed full lookup.
  void insert(unsigned InterpId, Oop Cls, Oop Selector, Oop Method,
              Oop DefiningClass);

  /// Flushes everything (scavenge hook: cached oops may have moved).
  void flushAll();

  /// Flushes entries for \p Selector in every table (method install).
  void flushSelector(Oop Selector);

  uint64_t hits() const { return Stats.Hits.value(); }
  uint64_t misses() const { return Stats.Misses.value(); }
  uint64_t missesReplicated() const { return Stats.MissReplicated.value(); }
  uint64_t missesGlobal() const { return Stats.MissGlobal.value(); }

private:
  MethodCacheKind Kind;
  RwSpinLock GlobalLock;
  std::vector<std::unique_ptr<MethodCacheTable>> Tables; // 1 or N
  MethodCacheStats Stats;
};

} // namespace mst

#endif // MST_VM_METHODCACHE_H
