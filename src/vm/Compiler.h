//===-- vm/Compiler.h - Compilation driver ----------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compilation front door: source text -> CompiledMethod. The "compile
/// dummy method" macro benchmark (Table 2) drives this path repeatedly.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_COMPILER_H
#define MST_VM_COMPILER_H

#include <string>

#include "objmem/Oop.h"
#include "vm/ObjectModel.h"

namespace mst {

class MethodCache;

/// Result of a compilation: a method oop, or an error message.
struct CompileResult {
  Oop Method;        ///< null on failure
  std::string Error; ///< empty on success

  bool ok() const { return !Method.isNull(); }
};

/// Compiles a full method definition (pattern, pragma, temps, body) for
/// class \p Cls. Does not install it.
CompileResult compileMethodSource(ObjectModel &Om, Oop Cls,
                                  const std::string &Source);

/// Compiles an expression sequence into a 'doIt' method on \p Cls. The
/// method answers the value of the final expression.
CompileResult compileDoItSource(ObjectModel &Om, Oop Cls,
                                const std::string &Source);

/// Installs \p Method in \p Cls's method dictionary under the method's own
/// selector, flushing \p Cache entries for that selector (pass nullptr
/// during bootstrap, before caches exist).
void installMethod(ObjectModel &Om, MethodCache *Cache, Oop Cls, Oop Method);

/// Convenience: compile + install; aborts the process on a compile error
/// (bootstrap code must be correct). \returns the method.
Oop mustCompile(ObjectModel &Om, MethodCache *Cache, Oop Cls,
                const std::string &Source);

} // namespace mst

#endif // MST_VM_COMPILER_H
