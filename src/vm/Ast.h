//===-- vm/Ast.h - Method parse tree ----------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree produced by the parser and consumed by the
/// code generator. Nodes carry an explicit kind tag (no RTTI).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_AST_H
#define MST_VM_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace mst {

struct ExprNode;
using ExprPtr = std::unique_ptr<ExprNode>;

/// One message in a cascade or send: selector plus arguments.
struct MessagePart {
  std::string Selector;
  std::vector<ExprPtr> Args;
};

/// An expression (or statement) node.
struct ExprNode {
  enum class Kind : uint8_t {
    IntLit,     ///< IntValue
    CharLit,    ///< CharValue
    StrLit,     ///< Text
    SymLit,     ///< Text
    ArrayLit,   ///< Elements (literal nodes only)
    Ident,      ///< Text: variable reference (or self/super/true/...)
    Assign,     ///< Text := Args[0]
    Send,       ///< Receiver, Message; SuperSend when receiver is 'super'
    Cascade,    ///< Receiver, Cascades (>= 2 messages to one receiver)
    Block,      ///< BlockParams, BlockTemps, Body
    Return,     ///< ^ Args[0]
  };

  explicit ExprNode(Kind K) : K(K) {}

  Kind K;
  intptr_t IntValue = 0;
  char CharValue = 0;
  std::string Text;

  ExprPtr Receiver;
  MessagePart Message;                ///< Send
  std::vector<MessagePart> Cascades;  ///< Cascade (all messages, in order)
  std::vector<ExprPtr> Args;          ///< Assign/Return operand, ArrayLit
  std::vector<ExprPtr> Elements;      ///< ArrayLit elements

  std::vector<std::string> BlockParams;
  std::vector<std::string> BlockTemps;
  std::vector<ExprPtr> Body;          ///< Block statements
};

/// A parsed method.
struct MethodNode {
  std::string Selector;
  std::vector<std::string> Params;
  std::vector<std::string> Temps;
  int PrimitiveIndex = 0; ///< from <primitive: N>; 0 = none
  std::vector<ExprPtr> Body;
  std::string Source; ///< original text, stored on the CompiledMethod
};

} // namespace mst

#endif // MST_VM_AST_H
