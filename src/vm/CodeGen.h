//===-- vm/CodeGen.h - Bytecode generation ----------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates bytecode from a parsed method. Control-flow selectors with
/// literal block operands (ifTrue:, and:, whileTrue:, to:do:, ...) are
/// inlined into jumps — this is what makes `[true] whileTrue` the paper's
/// minimal-interference idle Process: no lookups, no allocation (§4).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_CODEGEN_H
#define MST_VM_CODEGEN_H

#include <string>
#include <vector>

#include "objmem/Oop.h"
#include "vm/Ast.h"
#include "vm/ObjectModel.h"

namespace mst {

/// One method's code generation.
class CodeGen {
public:
  /// \param Cls the class the method is compiled for (instance-variable
  /// resolution and super sends).
  CodeGen(ObjectModel &Om, Oop Cls);

  /// Generates a CompiledMethod (allocated in old space — compiled code is
  /// permanent, as tenured code was in BS). \returns the null oop on error
  /// with \p Error set.
  Oop generate(const MethodNode &M, std::string &Error);

private:
  // --- emission helpers
  void emitOp(Op O) { Code.push_back(static_cast<uint8_t>(O)); }
  void emitU8(uint8_t B) { Code.push_back(B); }
  void emitS16(int16_t V) {
    Code.push_back(static_cast<uint8_t>(V & 0xff));
    Code.push_back(static_cast<uint8_t>((V >> 8) & 0xff));
  }
  /// Emits a jump with a placeholder offset. \returns the patch position.
  size_t emitJump(Op O) {
    emitOp(O);
    size_t Pos = Code.size();
    emitS16(0);
    return Pos;
  }
  /// Patches the s16 at \p Pos to land on the current position.
  void patchJumpToHere(size_t Pos);
  /// Emits a backward jump to \p Target.
  void emitJumpTo(Op O, size_t Target);

  unsigned addLiteral(Oop Lit);

  // --- operand-stack depth tracking (per context: method or block)
  struct Depth {
    int Cur = 0;
    int Max = 0;
  };
  void push(int N = 1) {
    Depth &D = Depths.back();
    D.Cur += N;
    if (D.Cur > D.Max)
      D.Max = D.Cur;
  }
  void pop(int N = 1) { Depths.back().Cur -= N; }

  // --- name resolution
  /// Allocates a new temp slot (block params/temps share the method frame;
  /// blocks are blue-book non-reentrant, so slots never conflict).
  uint8_t addTemp(const std::string &Name);
  int findTemp(const std::string &Name) const;
  int findIvar(const std::string &Name) const;

  // --- recursive generation; all return false on error
  bool genStatements(const std::vector<ExprPtr> &Body, bool ValueOfLast);
  bool genExpr(const ExprNode &E);
  bool genSend(const ExprNode &E);
  bool genMessage(const MessagePart &M, bool SuperSend);
  bool genCascade(const ExprNode &E);
  bool genBlock(const ExprNode &E);
  bool genIdent(const std::string &Name);
  bool genAssign(const ExprNode &E);
  bool genLiteralPush(const ExprNode &E);
  Oop literalFor(const ExprNode &E); ///< builds literal oops (old space)

  /// Attempts control-flow inlining. \returns true if handled; sets
  /// HadError on failure inside an attempted inline.
  bool tryInline(const ExprNode &E, bool &Handled);
  bool genInlineBlockValue(const ExprNode &Block);

  bool failGen(const std::string &Msg);

  ObjectModel &Om;
  Oop Cls;
  std::vector<uint8_t> Code;
  std::vector<Oop> Literals;
  std::vector<std::string> TempNames;
  std::vector<Depth> Depths;
  std::string Error;
  bool HadError = false;
};

} // namespace mst

#endif // MST_VM_CODEGEN_H
