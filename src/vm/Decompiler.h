//===-- vm/Decompiler.h - CompiledMethod -> source text ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The decompiler behind the "decompile class" macro benchmark (Table 2).
/// Straight-line code (including literal blocks) is reconstructed into
/// source-shaped text via a symbolic operand stack; methods containing
/// inlined control flow fall back to an annotated bytecode listing with
/// literals resolved — the same traversal and string-building workload
/// either way.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VM_DECOMPILER_H
#define MST_VM_DECOMPILER_H

#include <string>

#include "objmem/Oop.h"
#include "vm/ObjectModel.h"

namespace mst {

/// Decompiles \p Method into source-shaped text. Never fails: methods the
/// reconstructor cannot handle yield a resolved bytecode listing instead.
/// Does not allocate in the Smalltalk heap.
std::string decompileMethod(ObjectModel &Om, Oop Method);

} // namespace mst

#endif // MST_VM_DECOMPILER_H
