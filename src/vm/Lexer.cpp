//===-- vm/Lexer.cpp - Smalltalk tokenizer ----------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vm/Lexer.h"

#include <cctype>

using namespace mst;

bool mst::isBinarySelectorChar(char C) {
  switch (C) {
  case '+':
  case '-':
  case '*':
  case '/':
  case '~':
  case '<':
  case '>':
  case '=':
  case '&':
  case '@':
  case '%':
  case ',':
  case '?':
  case '!':
  case '\\':
    return true;
  default:
    return false;
  }
}

Lexer::Lexer(const std::string &Source) { tokenize(Source); }

const Token &Lexer::peek(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // The End token.
  return Tokens[I];
}

Token Lexer::next() {
  Token T = peek();
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

void Lexer::tokenize(const std::string &Src) {
  size_t I = 0, N = Src.size();
  TokenKind Prev = TokenKind::End;

  auto Emit = [this, &Prev](TokenKind K, std::string Text, uint32_t Off,
                            intptr_t V = 0) {
    Tokens.push_back({K, std::move(Text), V, Off});
    Prev = K;
  };

  auto Fail = [this, &I](const std::string &Msg) {
    ErrorMessage = Msg + " at offset " + std::to_string(I);
  };

  while (I < N && ErrorMessage.empty()) {
    char C = Src[I];
    uint32_t Off = static_cast<uint32_t>(I);

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(C))) {
      ++I;
      continue;
    }
    // Comments: "..." (doubled quotes escape).
    if (C == '"') {
      ++I;
      while (I < N) {
        if (Src[I] == '"') {
          if (I + 1 < N && Src[I + 1] == '"') {
            I += 2;
            continue;
          }
          break;
        }
        ++I;
      }
      if (I >= N) {
        Fail("unterminated comment");
        break;
      }
      ++I; // closing quote
      continue;
    }
    // Identifiers and keywords.
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = I;
      while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                       Src[I] == '_'))
        ++I;
      std::string Word = Src.substr(Start, I - Start);
      if (I < N && Src[I] == ':' && (I + 1 >= N || Src[I + 1] != '=')) {
        ++I;
        Emit(TokenKind::Keyword, Word + ":", Off);
      } else {
        Emit(TokenKind::Identifier, Word, Off);
      }
      continue;
    }
    // Numbers (optionally radix rNN form like 16rFF).
    bool NegNumber = C == '-' && I + 1 < N &&
                     std::isdigit(static_cast<unsigned char>(Src[I + 1])) &&
                     Prev != TokenKind::Identifier &&
                     Prev != TokenKind::Integer &&
                     Prev != TokenKind::RParen &&
                     Prev != TokenKind::RBracket &&
                     Prev != TokenKind::String &&
                     Prev != TokenKind::CharLit &&
                     Prev != TokenKind::SymbolLit;
    if (std::isdigit(static_cast<unsigned char>(C)) || NegNumber) {
      bool Neg = NegNumber;
      if (Neg)
        ++I;
      intptr_t Value = 0;
      while (I < N && std::isdigit(static_cast<unsigned char>(Src[I]))) {
        Value = Value * 10 + (Src[I] - '0');
        ++I;
      }
      if (I < N && Src[I] == 'r') {
        // Radix literal: <base>r<digits>.
        intptr_t Base = Value;
        if (Base < 2 || Base > 36) {
          Fail("bad radix");
          break;
        }
        ++I;
        Value = 0;
        bool Any = false;
        while (I < N) {
          char D = Src[I];
          intptr_t DV;
          if (std::isdigit(static_cast<unsigned char>(D)))
            DV = D - '0';
          else if (std::isupper(static_cast<unsigned char>(D)))
            DV = D - 'A' + 10;
          else
            break;
          if (DV >= Base)
            break;
          Value = Value * Base + DV;
          ++I;
          Any = true;
        }
        if (!Any) {
          Fail("radix literal needs digits");
          break;
        }
      }
      Emit(TokenKind::Integer, "", Off, Neg ? -Value : Value);
      continue;
    }
    // Strings: 'abc' with '' escape.
    if (C == '\'') {
      ++I;
      std::string S;
      for (;;) {
        if (I >= N) {
          Fail("unterminated string");
          break;
        }
        if (Src[I] == '\'') {
          if (I + 1 < N && Src[I + 1] == '\'') {
            S += '\'';
            I += 2;
            continue;
          }
          ++I;
          break;
        }
        S += Src[I++];
      }
      if (!ErrorMessage.empty())
        break;
      Emit(TokenKind::String, std::move(S), Off);
      continue;
    }
    // Character literals: $x ($ followed by any character).
    if (C == '$') {
      if (I + 1 >= N) {
        Fail("dollar at end of source");
        break;
      }
      Emit(TokenKind::CharLit, std::string(1, Src[I + 1]), Off);
      I += 2;
      continue;
    }
    // Symbols and literal arrays: #foo #foo:bar: #+ #( ... ).
    if (C == '#') {
      if (I + 1 < N && Src[I + 1] == '(') {
        I += 2;
        Emit(TokenKind::ArrayStart, "#(", Off);
        continue;
      }
      ++I;
      if (I < N && Src[I] == '\'') {
        // #'quoted symbol'
        ++I;
        std::string S;
        while (I < N && Src[I] != '\'')
          S += Src[I++];
        if (I >= N) {
          Fail("unterminated quoted symbol");
          break;
        }
        ++I;
        Emit(TokenKind::SymbolLit, std::move(S), Off);
        continue;
      }
      if (I < N && (std::isalpha(static_cast<unsigned char>(Src[I])) ||
                    Src[I] == '_')) {
        std::string S;
        // Sequences of identifiers with colons: foo:bar:baz:.
        while (I < N && (std::isalnum(static_cast<unsigned char>(Src[I])) ||
                         Src[I] == '_' || Src[I] == ':'))
          S += Src[I++];
        Emit(TokenKind::SymbolLit, std::move(S), Off);
        continue;
      }
      if (I < N && isBinarySelectorChar(Src[I])) {
        std::string S;
        while (I < N && isBinarySelectorChar(Src[I]))
          S += Src[I++];
        Emit(TokenKind::SymbolLit, std::move(S), Off);
        continue;
      }
      Fail("bad symbol literal");
      break;
    }
    // Punctuation and operators.
    switch (C) {
    case '(':
      Emit(TokenKind::LParen, "(", Off);
      ++I;
      continue;
    case ')':
      Emit(TokenKind::RParen, ")", Off);
      ++I;
      continue;
    case '[':
      Emit(TokenKind::LBracket, "[", Off);
      ++I;
      continue;
    case ']':
      Emit(TokenKind::RBracket, "]", Off);
      ++I;
      continue;
    case ';':
      Emit(TokenKind::Semicolon, ";", Off);
      ++I;
      continue;
    case '.':
      Emit(TokenKind::Period, ".", Off);
      ++I;
      continue;
    case '^':
      Emit(TokenKind::Caret, "^", Off);
      ++I;
      continue;
    case ':':
      if (I + 1 < N && Src[I + 1] == '=') {
        Emit(TokenKind::Assign, ":=", Off);
        I += 2;
      } else {
        Emit(TokenKind::Colon, ":", Off);
        ++I;
      }
      continue;
    case '|':
      Emit(TokenKind::VBar, "|", Off);
      ++I;
      continue;
    default:
      break;
    }
    if (isBinarySelectorChar(C)) {
      std::string S;
      while (I < N && isBinarySelectorChar(Src[I]) && S.size() < 2)
        S += Src[I++];
      Emit(TokenKind::BinarySel, std::move(S), Off);
      continue;
    }
    Fail(std::string("unexpected character '") + C + "'");
    break;
  }

  Tokens.push_back({TokenKind::End, "", 0,
                    static_cast<uint32_t>(Src.size())});
}
