//===-- vkernel/Chaos.cpp - Seeded schedule-chaos engine --------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/Chaos.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <thread>

#include "support/SplitMix64.h"
#include "vkernel/Delay.h"

using namespace mst;
using namespace mst::chaos;

std::atomic<bool> detail::On{false};
std::atomic<uint32_t> detail::FailArmed{0};

namespace {

/// Engine-wide configuration, published as a pointer to an immutable,
/// deliberately-leaked Config so a thread still perturbing from the
/// previous epoch never races an enable() (a mutable shared Config would
/// be a data race under TSan — in the race *detector's* harness).
/// enable() is per-test-run, so the leak is a few dozen bytes ever.
std::atomic<const Config *> ActiveCfg{nullptr};

const Config &activeConfig() {
  static const Config Defaults;
  const Config *C = ActiveCfg.load(std::memory_order_acquire);
  return C ? *C : Defaults;
}

/// Bumped by every enable() so thread-local streams know to re-derive
/// themselves from the new seed.
std::atomic<uint64_t> Epoch{1};

/// Fallback ordinal source for threads that never called
/// setThreadOrdinal().
std::atomic<uint64_t> NextOrdinal{1u << 20};

std::atomic<uint64_t> Perturbations{0};

/// Per-point hit statistics. Lock-free on purpose: a mutex here would
/// synchronize every pair of threads that cross the same point and hide
/// the races the engine exists to expose. Fixed-capacity open-addressed
/// table keyed by the point-name *pointer* (points are string literals,
/// so one pointer per call site; the catalog dedupes by content).
constexpr size_t PointTableSize = 128; // power of two, >> #injection points
struct PointSlot {
  std::atomic<const char *> Name{nullptr};
  std::atomic<uint64_t> Hits{0};
};
PointSlot PointTable[PointTableSize];

void countPoint(const char *Point) {
  auto Key = reinterpret_cast<uintptr_t>(Point);
  size_t I = (Key >> 3) & (PointTableSize - 1);
  for (size_t Probe = 0; Probe < PointTableSize; ++Probe) {
    PointSlot &S = PointTable[I];
    const char *Cur = S.Name.load(std::memory_order_relaxed);
    if (Cur == Point) {
      S.Hits.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (Cur == nullptr) {
      const char *Expected = nullptr;
      if (S.Name.compare_exchange_strong(Expected, Point,
                                         std::memory_order_relaxed) ||
          Expected == Point) {
        S.Hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    I = (I + 1) & (PointTableSize - 1);
  }
  // Table full: drop the sample (statistics only, never correctness).
}

void resetPoints() {
  for (PointSlot &S : PointTable) {
    S.Name.store(nullptr, std::memory_order_relaxed);
    S.Hits.store(0, std::memory_order_relaxed);
  }
  Perturbations.store(0, std::memory_order_relaxed);
}

/// Mixes two 64-bit values (seed, ordinal) into a stream seed.
uint64_t mixSeed(uint64_t Seed, uint64_t Ordinal) {
  SplitMix64 R(Seed ^ (Ordinal * 0x9e3779b97f4a7c15ULL));
  return R.next();
}

/// Armed fail points. Fixed-capacity like the point table, and matched by
/// *content* (arm site and check site use distinct literals). An entry's
/// Permille is the publication flag: failSlow() loads it acquire and skips
/// zero entries, so the name bytes written before the release store are
/// visible whenever the entry is live. Each hit draws from a stream keyed
/// by (arm seed, hit ordinal) — cross-thread timing decides which thread
/// gets which ordinal, but the fail/pass *sequence* replays by seed.
constexpr size_t MaxFailPoints = 16;
struct FailEntry {
  char Name[48] = {};
  std::atomic<uint32_t> Permille{0};
  uint64_t Seed = 0;
  std::atomic<uint64_t> Draws{0};
  std::atomic<uint64_t> Fails{0};
};
FailEntry FailTable[MaxFailPoints];

FailEntry *findFailEntry(const char *Point) {
  for (FailEntry &E : FailTable)
    if (E.Name[0] && std::strcmp(E.Name, Point) == 0)
      return &E;
  return nullptr;
}

/// The calling thread's decision stream, re-derived whenever the engine
/// epoch changes (i.e. after every enable()).
struct ThreadStream {
  uint64_t State = 0;
  uint64_t SeenEpoch = 0;
  uint64_t Ordinal = 0;
  bool OrdinalPinned = false;
};

ThreadStream &threadStream() {
  thread_local ThreadStream S;
  return S;
}

uint64_t drawFrom(ThreadStream &S) {
  // The acquire load of Epoch synchronizes with enable()'s release
  // increment, so a thread that observes the new epoch also observes the
  // ActiveCfg store that preceded it.
  uint64_t E = Epoch.load(std::memory_order_acquire);
  if (S.SeenEpoch != E) {
    if (!S.OrdinalPinned)
      S.Ordinal = NextOrdinal.fetch_add(1, std::memory_order_relaxed);
    S.State = mixSeed(activeConfig().Seed, S.Ordinal);
    S.SeenEpoch = E;
  }
  SplitMix64 R(S.State);
  uint64_t V = R.next();
  S.State += 0x9e3779b97f4a7c15ULL; // advance the underlying stream
  return V;
}

} // namespace

Action detail::perturb(const char *Point) {
  countPoint(Point);
  ThreadStream &S = threadStream();
  uint64_t V = drawFrom(S);
  uint32_t Roll = static_cast<uint32_t>(V % 1000);
  const Config &C = activeConfig();
  Action A = Action::None;
  if (Roll < C.YieldPermille)
    A = Action::Yield;
  else if (Roll < C.YieldPermille + C.SleepPermille)
    A = Action::Sleep;
  else if (Roll < C.YieldPermille + C.SleepPermille + C.DelayPermille)
    A = Action::Delay;

  switch (A) {
  case Action::None:
    return A;
  case Action::Yield:
    std::this_thread::yield();
    break;
  case Action::Sleep: {
    // Duration comes from the same stream, so it replays too.
    uint32_t Max = C.MaxSleepMicros ? C.MaxSleepMicros : 1;
    uint64_t Micros = 1 + (V >> 10) % Max;
    std::this_thread::sleep_for(std::chrono::microseconds(Micros));
    break;
  }
  case Action::Delay:
    vkDelay(0);
    break;
  }
  Perturbations.fetch_add(1, std::memory_order_relaxed);
  return A;
}

bool detail::failSlow(const char *Point) {
  for (FailEntry &E : FailTable) {
    uint32_t Pm = E.Permille.load(std::memory_order_acquire);
    if (Pm == 0 || std::strcmp(E.Name, Point) != 0)
      continue;
    countPoint(Point);
    uint64_t Ordinal = E.Draws.fetch_add(1, std::memory_order_relaxed);
    SplitMix64 R(E.Seed ^ (Ordinal * 0x9e3779b97f4a7c15ULL));
    if (R.next() % 1000 >= Pm)
      return false;
    E.Fails.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void chaos::armFail(const char *Point, uint32_t Permille, uint64_t Seed) {
  // Arm/disarm are test-setup operations; serialize them against each
  // other (failSlow stays lock-free — the Permille store publishes).
  static std::mutex ArmMutex;
  std::lock_guard<std::mutex> Guard(ArmMutex);
  FailEntry *E = findFailEntry(Point);
  if (!E) {
    for (FailEntry &Slot : FailTable)
      if (!Slot.Name[0]) {
        E = &Slot;
        break;
      }
    if (!E)
      return; // table full: drop (test-infrastructure capacity, not logic)
  }
  E->Permille.store(0, std::memory_order_release); // quiesce while rewriting
  std::strncpy(E->Name, Point, sizeof(E->Name) - 1);
  E->Name[sizeof(E->Name) - 1] = 0;
  E->Seed = Seed;
  E->Draws.store(0, std::memory_order_relaxed);
  E->Fails.store(0, std::memory_order_relaxed);
  E->Permille.store(Permille > 1000 ? 1000 : Permille,
                    std::memory_order_release);
  uint32_t Armed = 0;
  for (FailEntry &Slot : FailTable)
    if (Slot.Permille.load(std::memory_order_relaxed))
      ++Armed;
  detail::FailArmed.store(Armed, std::memory_order_release);
}

void chaos::disarmFail() {
  detail::FailArmed.store(0, std::memory_order_relaxed);
  for (FailEntry &E : FailTable)
    E.Permille.store(0, std::memory_order_release);
}

uint64_t chaos::failCount(const char *Point) {
  FailEntry *E = findFailEntry(Point);
  return E ? E->Fails.load(std::memory_order_relaxed) : 0;
}

bool chaos::armFailFromEnv(uint64_t Seed) {
  struct {
    const char *Env;
    const char *Point;
  } Map[] = {{"MST_CHAOS_ALLOC_FAIL_PM", "alloc.fail"},
             {"MST_CHAOS_GROW_FAIL_PM", "oldspace.grow.fail"},
             {"MST_CHAOS_STALL_PM", "watchdog.stall"},
             {"MST_CHAOS_IO_WRITE_FAIL_PM", "io.write.fail"},
             {"MST_CHAOS_IO_FSYNC_FAIL_PM", "io.fsync.fail"},
             {"MST_CHAOS_SNAPSHOT_TRUNCATE_PM", "snapshot.truncate"},
             {"MST_CHAOS_SHARD_CRASH_PM", "serve.shard.crash"},
             {"MST_CHAOS_REQUEST_STALL_PM", "serve.request.stall"},
             {"MST_CHAOS_ABORT_STUCK_PM", "serve.abort.stuck"},
             {"MST_CHAOS_JOURNAL_APPEND_FAIL_PM", "journal.append.fail"},
             {"MST_CHAOS_JOURNAL_FSYNC_FAIL_PM", "journal.fsync.fail"},
             {"MST_CHAOS_JOURNAL_TEAR_PM", "journal.tear"},
             {"MST_CHAOS_JOURNAL_TRUNCATE_FAIL_PM", "journal.truncate.fail"}};
  bool Any = false;
  for (auto &M : Map) {
    const char *S = std::getenv(M.Env);
    if (!S || !*S)
      continue;
    armFail(M.Point, static_cast<uint32_t>(std::strtoul(S, nullptr, 0)),
            Seed);
    Any = true;
  }
  return Any;
}

void chaos::enable(const Config &C) {
  // Quiesce the fast path, publish the new config + epoch, re-arm.
  detail::On.store(false, std::memory_order_relaxed);
  ActiveCfg.store(new Config(C), std::memory_order_release); // leaked
  resetPoints();
  Epoch.fetch_add(1, std::memory_order_release);
  detail::On.store(true, std::memory_order_release);
}

void chaos::enableSeed(uint64_t Seed) {
  Config C;
  C.Seed = Seed;
  enable(C);
}

void chaos::disable() {
  detail::On.store(false, std::memory_order_relaxed);
}

bool chaos::enabled() {
  return detail::On.load(std::memory_order_relaxed);
}

Config chaos::config() { return activeConfig(); }

bool chaos::enableFromEnv() {
  const char *SeedStr = std::getenv("MST_CHAOS_SEED");
  if (!SeedStr || !*SeedStr)
    return false;
  Config C;
  C.Seed = std::strtoull(SeedStr, nullptr, 0);
  if (const char *S = std::getenv("MST_CHAOS_YIELD_PM"))
    C.YieldPermille = static_cast<uint32_t>(std::strtoul(S, nullptr, 0));
  if (const char *S = std::getenv("MST_CHAOS_SLEEP_PM"))
    C.SleepPermille = static_cast<uint32_t>(std::strtoul(S, nullptr, 0));
  if (const char *S = std::getenv("MST_CHAOS_DELAY_PM"))
    C.DelayPermille = static_cast<uint32_t>(std::strtoul(S, nullptr, 0));
  if (const char *S = std::getenv("MST_CHAOS_MAX_SLEEP_US"))
    C.MaxSleepMicros = static_cast<uint32_t>(std::strtoul(S, nullptr, 0));
  enable(C);
  armFailFromEnv(C.Seed);
  return true;
}

void chaos::setThreadOrdinal(uint64_t Ordinal) {
  ThreadStream &S = threadStream();
  S.Ordinal = Ordinal;
  S.OrdinalPinned = true;
  S.SeenEpoch = 0; // re-derive from the pinned ordinal at the next point
}

uint64_t chaos::perturbationCount() {
  return Perturbations.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> chaos::pointCounts() {
  std::vector<std::pair<std::string, uint64_t>> Out;
  for (PointSlot &S : PointTable) {
    const char *Name = S.Name.load(std::memory_order_relaxed);
    if (!Name)
      continue;
    uint64_t Hits = S.Hits.load(std::memory_order_relaxed);
    // Several call sites may use distinct literals with equal content;
    // merge by name.
    auto It = std::find_if(Out.begin(), Out.end(),
                           [Name](const auto &P) { return P.first == Name; });
    if (It != Out.end())
      It->second += Hits;
    else
      Out.emplace_back(Name, Hits);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

std::vector<std::string> chaos::pointCatalog() {
  std::vector<std::string> Names;
  for (auto &[Name, Hits] : pointCounts())
    Names.push_back(Name);
  return Names;
}
