//===-- vkernel/Delay.h - The kernel Delay operation ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The V kernel's Delay operation. A delay with a minimal timeout allows
/// process switching to occur, if necessary, and avoids monopolizing the
/// memory bus while a spin lock is contended (paper §3.1).
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_DELAY_H
#define MST_VKERNEL_DELAY_H

#include <cstdint>

namespace mst {

/// Suspends the calling process for \p Micros microseconds. A zero timeout
/// is the "minimal timeout": it yields the processor without a timed sleep.
void vkDelay(uint64_t Micros);

} // namespace mst

#endif // MST_VKERNEL_DELAY_H
