//===-- vkernel/IpcChannel.h - Send/Receive/Reply IPC -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The V kernel's message-passing IPC in miniature: a synchronous
/// Send/Receive/Reply channel. MS uses this (together with a global flag)
/// to synchronize all interpreter processes for garbage collection, because
/// scavenging takes too long for spin-locks (paper §3.1).
///
/// Semantics follow V: Send blocks the sender until the receiver Replies;
/// Receive blocks until a message is available and returns a handle the
/// receiver later passes to Reply.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_IPCCHANNEL_H
#define MST_VKERNEL_IPCCHANNEL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

namespace mst {

/// A synchronous message channel with V Send/Receive/Reply semantics.
class IpcChannel {
public:
  /// Opaque handle identifying a received, not-yet-replied message.
  using MessageHandle = void *;

  IpcChannel() = default;
  IpcChannel(const IpcChannel &) = delete;
  IpcChannel &operator=(const IpcChannel &) = delete;

  /// Sends \p Request and blocks until the receiver replies.
  /// \returns the receiver's reply value.
  uint64_t send(uint64_t Request);

  /// Blocks until a message arrives. \param [out] Request receives the
  /// sender's request value. \returns a handle to pass to reply().
  MessageHandle receive(uint64_t &Request);

  /// Attempts a non-blocking receive. \returns a handle, or nullptr when no
  /// message is pending.
  MessageHandle tryReceive(uint64_t &Request);

  /// Replies to the message identified by \p Handle, unblocking its sender.
  void reply(MessageHandle Handle, uint64_t Response);

  /// \returns the number of senders currently queued or awaiting replies.
  unsigned pendingSenders();

private:
  struct Message {
    uint64_t Request = 0;
    uint64_t Response = 0;
    bool Replied = false;
    std::condition_variable Cv;
  };

  std::mutex Mutex;
  std::condition_variable Arrived;
  std::deque<Message *> Queue;       // Sent, not yet received.
  unsigned AwaitingReply = 0;        // Received, not yet replied.
};

} // namespace mst

#endif // MST_VKERNEL_IPCCHANNEL_H
