//===-- vkernel/IpcChannel.h - Send/Receive/Reply IPC -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The V kernel's message-passing IPC in miniature: a synchronous
/// Send/Receive/Reply channel. MS uses this (together with a global flag)
/// to synchronize all interpreter processes for garbage collection, because
/// scavenging takes too long for spin-locks (paper §3.1).
///
/// Semantics follow V: Send blocks the sender until the receiver Replies;
/// Receive blocks until a message is available and returns a handle the
/// receiver later passes to Reply.
///
/// Shutdown: destroying a channel (or calling shutdown()) wakes every
/// blocked sender with ShutdownResponse and every blocked receiver with a
/// null handle, then waits for them to drain before the members are torn
/// down — a channel can always be destroyed, even with threads parked in
/// it. After shutdown, send() returns ShutdownResponse immediately,
/// receive() returns nullptr, and reply() to an already-shut-down handle
/// is a no-op.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_IPCCHANNEL_H
#define MST_VKERNEL_IPCCHANNEL_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace mst {

/// A synchronous message channel with V Send/Receive/Reply semantics.
class IpcChannel {
public:
  /// Opaque handle identifying a received, not-yet-replied message.
  using MessageHandle = void *;

  /// The reply value senders observe when the channel shuts down from
  /// under them. Real replies carrying this value are indistinguishable
  /// from shutdown by design — V's ReplyWithSegment has the same ambiguity.
  static constexpr uint64_t ShutdownResponse = ~uint64_t(0);

  IpcChannel() = default;
  IpcChannel(const IpcChannel &) = delete;
  IpcChannel &operator=(const IpcChannel &) = delete;

  /// Shuts down and waits for every blocked sender/receiver to leave.
  ~IpcChannel();

  /// Sends \p Request and blocks until the receiver replies.
  /// \returns the receiver's reply value, or ShutdownResponse if the
  /// channel shut down before a reply arrived.
  uint64_t send(uint64_t Request);

  /// Blocks until a message arrives. \param [out] Request receives the
  /// sender's request value. \returns a handle to pass to reply(), or
  /// nullptr when the channel shut down while waiting.
  MessageHandle receive(uint64_t &Request);

  /// Attempts a non-blocking receive. \returns a handle, or nullptr when no
  /// message is pending (or the channel has shut down).
  MessageHandle tryReceive(uint64_t &Request);

  /// Replies to the message identified by \p Handle, unblocking its sender.
  /// No-op if the channel shut down after the handle was received (the
  /// sender was already released with ShutdownResponse).
  void reply(MessageHandle Handle, uint64_t Response);

  /// Wakes all blocked senders (with ShutdownResponse) and receivers (with
  /// a null handle). Idempotent. Does not wait for them to drain — the
  /// destructor does.
  void shutdown();

  /// \returns true once shutdown() has run.
  bool isShutdown();

  /// \returns the number of senders currently queued or awaiting replies.
  unsigned pendingSenders();

  /// \returns the number of threads currently parked inside send() or
  /// receive(). Test support: destroying a channel is only well-defined
  /// for threads already *inside* a call, and this is how a test observes
  /// that (a thread about to call send/receive is not counted).
  unsigned waiters();

private:
  struct Message {
    uint64_t Request = 0;
    uint64_t Response = 0;
    bool Replied = false;
    std::condition_variable Cv;
  };

  std::mutex Mutex;
  std::condition_variable Arrived;
  std::condition_variable Drained;
  std::deque<Message *> Queue;       // Sent, not yet received.
  std::vector<Message *> InFlight;   // Received, not yet replied.
  unsigned Waiters = 0;              // Threads blocked inside send/receive.
  bool ShuttingDown = false;
};

} // namespace mst

#endif // MST_VKERNEL_IPCCHANNEL_H
