//===-- vkernel/VKernel.cpp - Lightweight processes -------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/VKernel.h"

#include "obs/TraceBuffer.h"
#include "support/Assert.h"

using namespace mst;

VKernel::VKernel(unsigned NumProcessors) : NumProcessors(NumProcessors) {
  assert(NumProcessors > 0 && "a kernel needs at least one processor");
}

VKernel::~VKernel() { joinAll(); }

VProcess *VKernel::createProcess(const std::string &Name,
                                 std::function<void()> Main) {
  std::lock_guard<std::mutex> Guard(Mutex);
  unsigned Id = static_cast<unsigned>(Processes.size());
  unsigned Processor = NextProcessor;
  NextProcessor = (NextProcessor + 1) % NumProcessors;
  auto Proc = std::unique_ptr<VProcess>(new VProcess(Name, Id, Processor));
  // Attribute the thread's trace events to its virtual processor before any
  // of its spans are recorded.
  Proc->Thread = std::thread(
      [Name, Processor, Body = std::move(Main)]() mutable {
        setTraceThreadInfo(Name, static_cast<int>(Processor));
        Body();
      });
  Processes.push_back(std::move(Proc));
  return Processes.back().get();
}

void VKernel::joinAll() {
  // Take the list under the lock, but join outside it so a joining thread
  // does not block process creation by other threads indefinitely.
  std::vector<VProcess *> ToJoin;
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    for (auto &P : Processes)
      if (P->Thread.joinable())
        ToJoin.push_back(P.get());
  }
  for (VProcess *P : ToJoin)
    if (P->Thread.joinable())
      P->Thread.join();
}

unsigned VKernel::numProcesses() const {
  std::lock_guard<std::mutex> Guard(Mutex);
  return static_cast<unsigned>(Processes.size());
}

std::vector<unsigned> VKernel::processesOnProcessor(unsigned P) const {
  assert(P < NumProcessors && "processor index out of range");
  std::lock_guard<std::mutex> Guard(Mutex);
  std::vector<unsigned> Ids;
  for (const auto &Proc : Processes)
    if (Proc->processor() == P)
      Ids.push_back(Proc->id());
  return Ids;
}
