//===-- vkernel/IpcChannel.cpp - Send/Receive/Reply IPC ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/IpcChannel.h"

#include "obs/TraceBuffer.h"
#include "support/Assert.h"

using namespace mst;

uint64_t IpcChannel::send(uint64_t Request) {
  // The span covers the full synchronous round trip: enqueue, the
  // receiver's service time, and the reply wakeup.
  TraceSpan Span("ipc.send", "ipc");
  Span.setArg(Request);
  Message Msg;
  Msg.Request = Request;
  std::unique_lock<std::mutex> Lock(Mutex);
  Queue.push_back(&Msg);
  Arrived.notify_one();
  Msg.Cv.wait(Lock, [&Msg] { return Msg.Replied; });
  return Msg.Response;
}

IpcChannel::MessageHandle IpcChannel::receive(uint64_t &Request) {
  TraceSpan Span("ipc.receive", "ipc");
  std::unique_lock<std::mutex> Lock(Mutex);
  Arrived.wait(Lock, [this] { return !Queue.empty(); });
  Message *Msg = Queue.front();
  Queue.pop_front();
  ++AwaitingReply;
  Request = Msg->Request;
  Span.setArg(Request);
  return Msg;
}

IpcChannel::MessageHandle IpcChannel::tryReceive(uint64_t &Request) {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Queue.empty())
    return nullptr;
  Message *Msg = Queue.front();
  Queue.pop_front();
  ++AwaitingReply;
  Request = Msg->Request;
  return Msg;
}

void IpcChannel::reply(MessageHandle Handle, uint64_t Response) {
  assert(Handle && "reply() needs a handle from receive()");
  auto *Msg = static_cast<Message *>(Handle);
  traceInstant("ipc.reply", "ipc", Response);
  std::unique_lock<std::mutex> Lock(Mutex);
  assert(AwaitingReply > 0 && "reply() without matching receive()");
  --AwaitingReply;
  Msg->Response = Response;
  Msg->Replied = true;
  Msg->Cv.notify_one();
}

unsigned IpcChannel::pendingSenders() {
  std::unique_lock<std::mutex> Lock(Mutex);
  return static_cast<unsigned>(Queue.size()) + AwaitingReply;
}
