//===-- vkernel/IpcChannel.cpp - Send/Receive/Reply IPC ---------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/IpcChannel.h"

#include <algorithm>

#include "obs/Profiler.h"
#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"

using namespace mst;

IpcChannel::~IpcChannel() {
  shutdown();
  // A waiter that has been woken still needs the mutex to leave its wait;
  // destroying the members out from under it would be a use-after-free.
  std::unique_lock<std::mutex> Lock(Mutex);
  Drained.wait(Lock, [this] { return Waiters == 0; });
}

uint64_t IpcChannel::send(uint64_t Request) {
  // The span covers the full synchronous round trip: enqueue, the
  // receiver's service time, and the reply wakeup.
  TraceSpan Span("ipc.send", "ipc");
  Span.setArg(Request);
  ProfStateScope Prof(ProfState::IpcBlocked);
  chaos::point("ipc.send");
  Message Msg;
  Msg.Request = Request;
  std::unique_lock<std::mutex> Lock(Mutex);
  if (ShuttingDown)
    return ShutdownResponse;
  Queue.push_back(&Msg);
  Arrived.notify_one();
  ++Waiters;
  Msg.Cv.wait(Lock, [&Msg] { return Msg.Replied; });
  if (--Waiters == 0 && ShuttingDown)
    Drained.notify_all();
  return Msg.Response;
}

IpcChannel::MessageHandle IpcChannel::receive(uint64_t &Request) {
  TraceSpan Span("ipc.receive", "ipc");
  ProfStateScope Prof(ProfState::IpcBlocked);
  chaos::point("ipc.receive");
  std::unique_lock<std::mutex> Lock(Mutex);
  ++Waiters;
  Arrived.wait(Lock, [this] { return !Queue.empty() || ShuttingDown; });
  if (--Waiters == 0 && ShuttingDown)
    Drained.notify_all();
  if (Queue.empty()) // Woken by shutdown, nothing to receive.
    return nullptr;
  Message *Msg = Queue.front();
  Queue.pop_front();
  InFlight.push_back(Msg);
  Request = Msg->Request;
  Span.setArg(Request);
  return Msg;
}

IpcChannel::MessageHandle IpcChannel::tryReceive(uint64_t &Request) {
  chaos::point("ipc.receive");
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Queue.empty())
    return nullptr;
  Message *Msg = Queue.front();
  Queue.pop_front();
  InFlight.push_back(Msg);
  Request = Msg->Request;
  return Msg;
}

void IpcChannel::reply(MessageHandle Handle, uint64_t Response) {
  assert(Handle && "reply() needs a handle from receive()");
  auto *Msg = static_cast<Message *>(Handle);
  traceInstant("ipc.reply", "ipc", Response);
  chaos::point("ipc.reply");
  std::unique_lock<std::mutex> Lock(Mutex);
  // After shutdown the sender was already released with ShutdownResponse
  // and its stack-resident Message may be gone — the handle must not be
  // dereferenced unless it is still in flight.
  auto It = std::find(InFlight.begin(), InFlight.end(), Msg);
  if (It == InFlight.end()) {
    assert(ShuttingDown && "reply() without matching receive()");
    return;
  }
  InFlight.erase(It);
  Msg->Response = Response;
  Msg->Replied = true;
  Msg->Cv.notify_one();
}

void IpcChannel::shutdown() {
  std::unique_lock<std::mutex> Lock(Mutex);
  if (ShuttingDown)
    return;
  ShuttingDown = true;
  // Release every sender: queued messages never got received, in-flight
  // ones never got replied. Both get ShutdownResponse.
  for (Message *Msg : Queue) {
    Msg->Response = ShutdownResponse;
    Msg->Replied = true;
    Msg->Cv.notify_one();
  }
  Queue.clear();
  for (Message *Msg : InFlight) {
    Msg->Response = ShutdownResponse;
    Msg->Replied = true;
    Msg->Cv.notify_one();
  }
  InFlight.clear();
  Arrived.notify_all();
}

bool IpcChannel::isShutdown() {
  std::unique_lock<std::mutex> Lock(Mutex);
  return ShuttingDown;
}

unsigned IpcChannel::pendingSenders() {
  std::unique_lock<std::mutex> Lock(Mutex);
  return static_cast<unsigned>(Queue.size() + InFlight.size());
}

unsigned IpcChannel::waiters() {
  std::unique_lock<std::mutex> Lock(Mutex);
  return Waiters;
}
