//===-- vkernel/Delay.cpp - The kernel Delay operation ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/Delay.h"

#include <chrono>
#include <thread>

using namespace mst;

void mst::vkDelay(uint64_t Micros) {
  if (Micros == 0) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(Micros));
}
