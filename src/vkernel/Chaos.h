//===-- vkernel/Chaos.h - Seeded schedule-chaos engine ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault/schedule injection for the concurrency kernel. The
/// host scheduler only ever shows us the "lucky" interleavings, so races
/// in the SpinLock/Safepoint/IpcChannel/Scheduler protocols can hide
/// indefinitely. Every concurrency-critical boundary calls a named
/// `chaos::point("...")`; when the engine is enabled it probabilistically
/// yields the processor, sleeps a few microseconds, or forces a kernel
/// Delay there, widening race windows by orders of magnitude.
///
/// Properties the stress suite depends on:
///  - **Disabled is free**: `point()` compiles to one relaxed load and a
///    predicted branch. No registration, no allocation, nothing.
///  - **Reproducible**: all randomness flows from one SplitMix64 seed.
///    Each thread draws from its own stream, derived from the seed and
///    the thread's *ordinal* — so a thread's decision sequence depends
///    only on (seed, ordinal), never on cross-thread timing. Rerunning
///    with the same seed replays the identical perturbation sequence.
///  - **No hidden synchronization**: the hot path and the per-point
///    statistics use only relaxed atomics. A mutex here would create
///    happens-before edges that *mask* exactly the races this engine
///    exists to expose (TSan would never see them).
///
/// Seeds come from `--chaos-seed=N` on the repl / bench binaries or the
/// `MST_CHAOS_SEED` environment variable (see enableFromEnv()); a failing
/// stress test prints the seed that provoked it.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_CHAOS_H
#define MST_VKERNEL_CHAOS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mst {
namespace chaos {

/// What a chaos point did. None is the only possible answer while the
/// engine is disabled.
enum class Action : uint8_t {
  None,  ///< no perturbation
  Yield, ///< gave up the processor (std::this_thread::yield)
  Sleep, ///< slept 1..MaxSleepMicros microseconds
  Delay, ///< invoked the kernel Delay with a minimal timeout (vkDelay(0))
};

/// Engine configuration. The three per-mille fields are per-point
/// probabilities and must sum to at most 1000; the remainder is "do
/// nothing". Defaults perturb ~15% of points — enough to scramble
/// interleavings without grinding workloads to a halt.
struct Config {
  uint64_t Seed = 1;
  uint32_t YieldPermille = 100;
  uint32_t SleepPermille = 40;
  uint32_t DelayPermille = 10;
  /// Inclusive upper bound on Sleep durations, in microseconds.
  uint32_t MaxSleepMicros = 50;
};

namespace detail {
/// The master switch. Read relaxed on every point() — the entire cost of
/// the engine when disabled.
extern std::atomic<bool> On;

/// Slow path, only reached while enabled.
Action perturb(const char *Point);

/// Number of armed fail points. Read relaxed on every failPoint().
extern std::atomic<uint32_t> FailArmed;

/// Slow path, only reached while at least one fail point is armed.
bool failSlow(const char *Point);
} // namespace detail

/// The injection point. Call at every concurrency-critical boundary with
/// a string-literal name ("spinlock.acquire", "ipc.send", ...).
/// \returns the action taken (None when disabled).
inline Action point(const char *Point) {
  if (!detail::On.load(std::memory_order_relaxed))
    return Action::None;
  return detail::perturb(Point);
}

/// Enables the engine with \p C. Reseeds every thread's stream (threads
/// re-derive their state from the new seed at their next point).
/// Resets the per-point statistics.
void enable(const Config &C);

/// Enables with default probabilities and the given seed.
void enableSeed(uint64_t Seed);

/// Disables the engine. point() returns to its one-load fast path.
void disable();

/// \returns true when the engine is currently perturbing.
bool enabled();

/// \returns the active (or most recently active) configuration.
Config config();

/// Reads MST_CHAOS_SEED (and the optional MST_CHAOS_YIELD_PM /
/// MST_CHAOS_SLEEP_PM / MST_CHAOS_DELAY_PM / MST_CHAOS_MAX_SLEEP_US
/// overrides) and enables the engine when a seed is present.
/// \returns true when chaos was enabled from the environment.
bool enableFromEnv();

/// --- Fault injection ----------------------------------------------------
/// Named *fail points* are the second half of the engine: where point()
/// perturbs schedules, failPoint() injects operation failures (a refused
/// allocation, a refused old-space growth, a mutator deliberately late to
/// a rendezvous) so recovery paths run deterministically by seed. The two
/// switches are independent: fail points stay armed across enable() /
/// disable() epochs, and draw from their own per-point SplitMix64 streams
/// keyed by (arm seed, hit ordinal) so a sweep replays exactly.

/// The injection check. Call where an operation may be forced to fail,
/// with a string-literal name ("alloc.fail", "oldspace.grow.fail", ...).
/// One relaxed load when nothing is armed.
/// \returns true when the caller must fail the operation.
inline bool failPoint(const char *Point) {
  if (detail::FailArmed.load(std::memory_order_relaxed) == 0)
    return false;
  return detail::failSlow(Point);
}

/// Arms fail point \p Point: each subsequent failPoint(Point) fails with
/// probability \p Permille / 1000, decided by a SplitMix64 stream derived
/// from \p Seed — same seed, same decision sequence. Permille 1000 fails
/// every hit; 0 disarms just this point. Re-arming resets the point's
/// stream and failure count. At most 16 distinct points may be armed.
void armFail(const char *Point, uint32_t Permille, uint64_t Seed);

/// Disarms every fail point. failPoint() returns to its one-load path;
/// failure counts remain readable until the next armFail().
void disarmFail();

/// \returns how many failures \p Point has injected since it was armed.
uint64_t failCount(const char *Point);

/// Reads MST_CHAOS_ALLOC_FAIL_PM / MST_CHAOS_GROW_FAIL_PM /
/// MST_CHAOS_STALL_PM / MST_CHAOS_IO_WRITE_FAIL_PM /
/// MST_CHAOS_IO_FSYNC_FAIL_PM / MST_CHAOS_SNAPSHOT_TRUNCATE_PM /
/// MST_CHAOS_SHARD_CRASH_PM / MST_CHAOS_REQUEST_STALL_PM /
/// MST_CHAOS_ABORT_STUCK_PM / MST_CHAOS_JOURNAL_APPEND_FAIL_PM /
/// MST_CHAOS_JOURNAL_FSYNC_FAIL_PM / MST_CHAOS_JOURNAL_TEAR_PM /
/// MST_CHAOS_JOURNAL_TRUNCATE_FAIL_PM and arms the corresponding fail
/// points ("alloc.fail", "oldspace.grow.fail", "watchdog.stall",
/// "io.write.fail", "io.fsync.fail", "snapshot.truncate",
/// "serve.shard.crash", "serve.request.stall", "serve.abort.stuck",
/// "journal.append.fail", "journal.fsync.fail", "journal.tear",
/// "journal.truncate.fail") with \p Seed. The CI small-heap, snapfuzz,
/// serve, and journal-fuzz lanes use this to push fault injection into
/// every stress binary without per-test plumbing.
/// \returns true when at least one point was armed.
bool armFailFromEnv(uint64_t Seed);

/// Fixes the calling thread's stream ordinal. Threads that never call
/// this get a process-unique ordinal at first use (deterministic only if
/// thread creation order is); tests that assert exact replay pin
/// ordinals explicitly.
void setThreadOrdinal(uint64_t Ordinal);

/// \returns the total number of perturbations (non-None actions) taken
/// since the last enable().
uint64_t perturbationCount();

/// \returns every point name seen since the last enable(), with the
/// number of times the point was *hit* (whatever the action), sorted by
/// name. Test support: asserts that the injection points a workload
/// should cross were actually exercised.
std::vector<std::pair<std::string, uint64_t>> pointCounts();

/// \returns just the names from pointCounts().
std::vector<std::string> pointCatalog();

} // namespace chaos
} // namespace mst

#endif // MST_VKERNEL_CHAOS_H
