//===-- vkernel/Chaos.h - Seeded schedule-chaos engine ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic fault/schedule injection for the concurrency kernel. The
/// host scheduler only ever shows us the "lucky" interleavings, so races
/// in the SpinLock/Safepoint/IpcChannel/Scheduler protocols can hide
/// indefinitely. Every concurrency-critical boundary calls a named
/// `chaos::point("...")`; when the engine is enabled it probabilistically
/// yields the processor, sleeps a few microseconds, or forces a kernel
/// Delay there, widening race windows by orders of magnitude.
///
/// Properties the stress suite depends on:
///  - **Disabled is free**: `point()` compiles to one relaxed load and a
///    predicted branch. No registration, no allocation, nothing.
///  - **Reproducible**: all randomness flows from one SplitMix64 seed.
///    Each thread draws from its own stream, derived from the seed and
///    the thread's *ordinal* — so a thread's decision sequence depends
///    only on (seed, ordinal), never on cross-thread timing. Rerunning
///    with the same seed replays the identical perturbation sequence.
///  - **No hidden synchronization**: the hot path and the per-point
///    statistics use only relaxed atomics. A mutex here would create
///    happens-before edges that *mask* exactly the races this engine
///    exists to expose (TSan would never see them).
///
/// Seeds come from `--chaos-seed=N` on the repl / bench binaries or the
/// `MST_CHAOS_SEED` environment variable (see enableFromEnv()); a failing
/// stress test prints the seed that provoked it.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_CHAOS_H
#define MST_VKERNEL_CHAOS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace mst {
namespace chaos {

/// What a chaos point did. None is the only possible answer while the
/// engine is disabled.
enum class Action : uint8_t {
  None,  ///< no perturbation
  Yield, ///< gave up the processor (std::this_thread::yield)
  Sleep, ///< slept 1..MaxSleepMicros microseconds
  Delay, ///< invoked the kernel Delay with a minimal timeout (vkDelay(0))
};

/// Engine configuration. The three per-mille fields are per-point
/// probabilities and must sum to at most 1000; the remainder is "do
/// nothing". Defaults perturb ~15% of points — enough to scramble
/// interleavings without grinding workloads to a halt.
struct Config {
  uint64_t Seed = 1;
  uint32_t YieldPermille = 100;
  uint32_t SleepPermille = 40;
  uint32_t DelayPermille = 10;
  /// Inclusive upper bound on Sleep durations, in microseconds.
  uint32_t MaxSleepMicros = 50;
};

namespace detail {
/// The master switch. Read relaxed on every point() — the entire cost of
/// the engine when disabled.
extern std::atomic<bool> On;

/// Slow path, only reached while enabled.
Action perturb(const char *Point);
} // namespace detail

/// The injection point. Call at every concurrency-critical boundary with
/// a string-literal name ("spinlock.acquire", "ipc.send", ...).
/// \returns the action taken (None when disabled).
inline Action point(const char *Point) {
  if (!detail::On.load(std::memory_order_relaxed))
    return Action::None;
  return detail::perturb(Point);
}

/// Enables the engine with \p C. Reseeds every thread's stream (threads
/// re-derive their state from the new seed at their next point).
/// Resets the per-point statistics.
void enable(const Config &C);

/// Enables with default probabilities and the given seed.
void enableSeed(uint64_t Seed);

/// Disables the engine. point() returns to its one-load fast path.
void disable();

/// \returns true when the engine is currently perturbing.
bool enabled();

/// \returns the active (or most recently active) configuration.
Config config();

/// Reads MST_CHAOS_SEED (and the optional MST_CHAOS_YIELD_PM /
/// MST_CHAOS_SLEEP_PM / MST_CHAOS_DELAY_PM / MST_CHAOS_MAX_SLEEP_US
/// overrides) and enables the engine when a seed is present.
/// \returns true when chaos was enabled from the environment.
bool enableFromEnv();

/// Fixes the calling thread's stream ordinal. Threads that never call
/// this get a process-unique ordinal at first use (deterministic only if
/// thread creation order is); tests that assert exact replay pin
/// ordinals explicitly.
void setThreadOrdinal(uint64_t Ordinal);

/// \returns the total number of perturbations (non-None actions) taken
/// since the last enable().
uint64_t perturbationCount();

/// \returns every point name seen since the last enable(), with the
/// number of times the point was *hit* (whatever the action), sorted by
/// name. Test support: asserts that the injection points a workload
/// should cross were actually exercised.
std::vector<std::pair<std::string, uint64_t>> pointCounts();

/// \returns just the names from pointCounts().
std::vector<std::string> pointCatalog();

} // namespace chaos
} // namespace mst

#endif // MST_VKERNEL_CHAOS_H
