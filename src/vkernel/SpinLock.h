//===-- vkernel/SpinLock.h - Test-and-set spin lock -------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The V System spin-lock that MS uses for every brief serialization
/// (paper §3.1): an interlocked test-and-set; when the test fails the
/// locking code invokes the kernel's Delay operation with a minimal
/// timeout, which allows process switching to occur and avoids
/// monopolizing the memory bus.
///
/// The lock can be *disabled* to model the "baseline BS" interpreter — the
/// uniprocessor build with no multiprocessor support. Table 2's state-1 vs
/// state-2 comparison measures exactly the cost of turning these on. A
/// disabled lock does no atomic work at all — not even counting — so the
/// baseline configuration pays nothing for the instrumentation.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_SPINLOCK_H
#define MST_VKERNEL_SPINLOCK_H

#include <atomic>
#include <cstdint>

#include "obs/Telemetry.h"
#include "vkernel/Chaos.h"

namespace mst {

/// Interlocked test-and-set spin lock with Delay backoff.
///
/// Instrumented through the telemetry registry: a *named* lock registers
/// `lock.<name>.{acquisitions,contended,delays}` counters (striped, so the
/// counting never becomes its own serialization point) and records a
/// contended-wait trace span when tracing is on. An unnamed lock still
/// counts locally but stays out of the registry.
class SpinLock {
public:
  /// \param Enabled when false, lock/unlock are no-ops. Models baseline BS.
  /// \param Name registry/trace name; must be a string literal (or
  ///        otherwise immortal). nullptr = unnamed.
  explicit SpinLock(bool Enabled = true, const char *Name = nullptr);

  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  /// Acquires the lock, spinning briefly and then delaying.
  void lock();

  /// Releases the lock.
  void unlock() {
    if (!Enabled)
      return;
    Flag.store(0, std::memory_order_release);
  }

  /// Attempts to acquire without blocking. \returns true on success.
  /// Always succeeds — and counts nothing — when the lock is disabled.
  bool tryLock() {
    if (!Enabled)
      return true;
    chaos::point("spinlock.trylock");
    bool Ok = Flag.exchange(1, std::memory_order_acquire) == 0;
    Acquisitions.add();
    if (!Ok)
      Contended.add();
    else
      chaos::point("spinlock.acquired");
    return Ok;
  }

  /// Enables or disables the lock. Only safe while no thread holds it.
  void setEnabled(bool E) { Enabled = E; }

  /// \returns true when lock()/unlock() actually synchronize.
  bool isEnabled() const { return Enabled; }

  /// \returns the lock's trace name, or nullptr when unnamed.
  const char *name() const { return TraceName; }

  /// \returns total lock() and tryLock() calls.
  uint64_t acquisitions() const { return Acquisitions.value(); }

  /// \returns acquisitions that found the lock already held.
  uint64_t contendedAcquisitions() const { return Contended.value(); }

  /// \returns how many times an acquirer fell back to a kernel Delay.
  uint64_t delays() const { return Delays.value(); }

  /// Resets the instrumentation counters.
  void resetCounters() {
    Acquisitions.reset();
    Contended.reset();
    Delays.reset();
  }

private:
  std::atomic<uint8_t> Flag{0};
  bool Enabled;
  const char *TraceName;
  Counter Acquisitions;
  Counter Contended;
  Counter Delays;
};

/// RAII guard for SpinLock.
class SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) : Lock(L) { Lock.lock(); }
  ~SpinLockGuard() { Lock.unlock(); }

  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

private:
  SpinLock &Lock;
};

} // namespace mst

#endif // MST_VKERNEL_SPINLOCK_H
