//===-- vkernel/SpinLock.h - Test-and-set spin lock -------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The V System spin-lock that MS uses for every brief serialization
/// (paper §3.1): an interlocked test-and-set; when the test fails the
/// locking code invokes the kernel's Delay operation with a minimal
/// timeout, which allows process switching to occur and avoids
/// monopolizing the memory bus.
///
/// The lock can be *disabled* to model the "baseline BS" interpreter — the
/// uniprocessor build with no multiprocessor support. Table 2's state-1 vs
/// state-2 comparison measures exactly the cost of turning these on.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_SPINLOCK_H
#define MST_VKERNEL_SPINLOCK_H

#include <atomic>
#include <cstdint>

namespace mst {

/// Interlocked test-and-set spin lock with Delay backoff.
///
/// Instrumented: counts acquisitions, contended acquisitions, and backoff
/// delays, so benches can report where serialization hurts (the paper's §6
/// instrumentation plan).
class SpinLock {
public:
  /// \param Enabled when false, lock/unlock are no-ops. Models baseline BS.
  explicit SpinLock(bool Enabled = true) : Enabled(Enabled) {}

  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  /// Acquires the lock, spinning briefly and then delaying.
  void lock();

  /// Releases the lock.
  void unlock() {
    if (!Enabled)
      return;
    Flag.store(0, std::memory_order_release);
  }

  /// Attempts to acquire without blocking. \returns true on success.
  /// Always succeeds when the lock is disabled.
  bool tryLock() {
    if (!Enabled)
      return true;
    bool Ok = Flag.exchange(1, std::memory_order_acquire) == 0;
    Acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (!Ok)
      Contended.fetch_add(1, std::memory_order_relaxed);
    return Ok;
  }

  /// Enables or disables the lock. Only safe while no thread holds it.
  void setEnabled(bool E) { Enabled = E; }

  /// \returns true when lock()/unlock() actually synchronize.
  bool isEnabled() const { return Enabled; }

  /// \returns total lock() and tryLock() calls.
  uint64_t acquisitions() const {
    return Acquisitions.load(std::memory_order_relaxed);
  }

  /// \returns acquisitions that found the lock already held.
  uint64_t contendedAcquisitions() const {
    return Contended.load(std::memory_order_relaxed);
  }

  /// \returns how many times an acquirer fell back to a kernel Delay.
  uint64_t delays() const { return Delays.load(std::memory_order_relaxed); }

  /// Resets the instrumentation counters.
  void resetCounters() {
    Acquisitions.store(0, std::memory_order_relaxed);
    Contended.store(0, std::memory_order_relaxed);
    Delays.store(0, std::memory_order_relaxed);
  }

private:
  std::atomic<uint8_t> Flag{0};
  bool Enabled;
  std::atomic<uint64_t> Acquisitions{0};
  std::atomic<uint64_t> Contended{0};
  std::atomic<uint64_t> Delays{0};
};

/// RAII guard for SpinLock.
class SpinLockGuard {
public:
  explicit SpinLockGuard(SpinLock &L) : Lock(L) { Lock.lock(); }
  ~SpinLockGuard() { Lock.unlock(); }

  SpinLockGuard(const SpinLockGuard &) = delete;
  SpinLockGuard &operator=(const SpinLockGuard &) = delete;

private:
  SpinLock &Lock;
};

} // namespace mst

#endif // MST_VKERNEL_SPINLOCK_H
