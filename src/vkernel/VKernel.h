//===-- vkernel/VKernel.h - Lightweight processes ---------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature stand-in for the V distributed kernel as MS used it
/// (paper §2): lightweight processes sharing a single address space,
/// statically assigned to processors. The Smalltalk interpreter is
/// replicated by creating one V process per desired interpreter, up to the
/// number of available processors (paper §3.2).
///
/// The kernel maintains a separate list of processes for each virtual
/// processor — the replicated per-processor ready queues of the Firefly V
/// port. Assignment is static and round-robin; on real hardware this meant
/// processors could idle while runnable processes sat on another queue,
/// which is why MS layers *dynamic* Smalltalk-Process scheduling on top.
///
//===----------------------------------------------------------------------===//

#ifndef MST_VKERNEL_VKERNEL_H
#define MST_VKERNEL_VKERNEL_H

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mst {

class VKernel;

/// One lightweight V process: a thread of machine-code execution inside the
/// kernel's shared address space.
class VProcess {
public:
  /// \returns the process's diagnostic name.
  const std::string &name() const { return Name; }

  /// \returns the virtual processor the process is statically assigned to.
  unsigned processor() const { return Processor; }

  /// \returns a small dense id unique within the owning kernel.
  unsigned id() const { return Id; }

private:
  friend class VKernel;
  VProcess(std::string Name, unsigned Id, unsigned Processor)
      : Name(std::move(Name)), Id(Id), Processor(Processor) {}

  std::string Name;
  unsigned Id;
  unsigned Processor;
  std::thread Thread;
};

/// The kernel: owns virtual processors and the processes assigned to them.
class VKernel {
public:
  /// \param NumProcessors number of virtual processors (the Firefly had 5).
  explicit VKernel(unsigned NumProcessors);

  /// Joins every process that is still running.
  ~VKernel();

  VKernel(const VKernel &) = delete;
  VKernel &operator=(const VKernel &) = delete;

  /// Creates and starts a lightweight process running \p Main. The process
  /// is statically assigned to the next processor in round-robin order.
  /// \returns a handle owned by the kernel (valid until the kernel dies).
  VProcess *createProcess(const std::string &Name,
                          std::function<void()> Main);

  /// Blocks until every created process has finished.
  void joinAll();

  /// \returns the number of virtual processors.
  unsigned numProcessors() const { return NumProcessors; }

  /// \returns the number of processes created so far.
  unsigned numProcesses() const;

  /// \returns the ids of the processes statically assigned to processor
  /// \p P. Mirrors the per-processor ready-queue replication in the V port.
  std::vector<unsigned> processesOnProcessor(unsigned P) const;

private:
  unsigned NumProcessors;
  mutable std::mutex Mutex;
  unsigned NextProcessor = 0;
  std::vector<std::unique_ptr<VProcess>> Processes;
};

} // namespace mst

#endif // MST_VKERNEL_VKERNEL_H
