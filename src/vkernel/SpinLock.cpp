//===-- vkernel/SpinLock.cpp - Test-and-set spin lock -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/SpinLock.h"

#include "obs/Profiler.h"
#include "obs/TraceBuffer.h"
#include "vkernel/Chaos.h"
#include "vkernel/Delay.h"

using namespace mst;

namespace {
std::string lockCounterName(const char *Name, const char *Suffix) {
  if (!Name)
    return {};
  return std::string("lock.") + Name + "." + Suffix;
}
} // namespace

SpinLock::SpinLock(bool Enabled, const char *Name)
    : Enabled(Enabled), TraceName(Name),
      Acquisitions(lockCounterName(Name, "acquisitions")),
      Contended(lockCounterName(Name, "contended")),
      Delays(lockCounterName(Name, "delays")) {}

void SpinLock::lock() {
  if (!Enabled)
    return;
  Acquisitions.add();
  chaos::point("spinlock.acquire");
  if (Flag.exchange(1, std::memory_order_acquire) == 0) {
    chaos::point("spinlock.acquired");
    return;
  }
  Contended.add();
  // The wait shows up on the timeline: a span named after the lock, in the
  // "lock" category, covering the whole contended acquisition. The profile
  // slot flips to lock-wait for the same window, so sampled contention and
  // traced contention agree.
  ProfStateScope Prof(ProfState::LockWait);
  TraceSpan Wait(TraceName ? TraceName : "lock.wait", "lock");
  // Spin with plain loads (no bus-locking exchange) for a short while, then
  // fall back to the kernel Delay with a minimal timeout, as MS does.
  unsigned Spins = 0;
  for (;;) {
    while (Flag.load(std::memory_order_relaxed) != 0) {
      if (++Spins >= 256) {
        Spins = 0;
        Delays.add();
        vkDelay(/*Micros=*/0);
      }
    }
    if (Flag.exchange(1, std::memory_order_acquire) == 0) {
      chaos::point("spinlock.acquired");
      return;
    }
  }
}
