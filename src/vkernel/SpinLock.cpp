//===-- vkernel/SpinLock.cpp - Test-and-set spin lock -----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "vkernel/SpinLock.h"
#include "vkernel/Delay.h"

using namespace mst;

void SpinLock::lock() {
  if (!Enabled)
    return;
  Acquisitions.fetch_add(1, std::memory_order_relaxed);
  if (Flag.exchange(1, std::memory_order_acquire) == 0)
    return;
  Contended.fetch_add(1, std::memory_order_relaxed);
  // Spin with plain loads (no bus-locking exchange) for a short while, then
  // fall back to the kernel Delay with a minimal timeout, as MS does.
  unsigned Spins = 0;
  for (;;) {
    while (Flag.load(std::memory_order_relaxed) != 0) {
      if (++Spins >= 256) {
        Spins = 0;
        Delays.fetch_add(1, std::memory_order_relaxed);
        vkDelay(/*Micros=*/0);
      }
    }
    if (Flag.exchange(1, std::memory_order_acquire) == 0)
      return;
  }
}
