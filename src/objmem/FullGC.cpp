//===-- objmem/FullGC.cpp - Parallel mark-sweep full collector --*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/FullGC.h"

#include <thread>

#include "objmem/ObjectMemory.h"
#include "objmem/Scavenger.h"
#include "obs/Profiler.h"
#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"

using namespace mst;

FullGC::FullGC(ObjectMemory &OM) : OM(OM) {
  NumWorkers = OM.Config.FullGcWorkers;
  if (NumWorkers == 0)
    NumWorkers = 1;
  // The baseline-BS build runs every object-memory lock as a no-op; the
  // collector's own stack locks stay real, but OldSpace's allocation lock
  // (which addFreeBlock shares) does not, so the sweep must be serial.
  if (!OM.Config.MpSupport)
    NumWorkers = 1;
  for (unsigned W = 0; W < NumWorkers; ++W)
    Workers.emplace_back();
}

void FullGC::markAndPush(ObjectHeader *H, unsigned W) {
  if (!H->tryMark())
    return;
  Worker &Target = Workers[W];
  SpinLockGuard Guard(Target.StackLock);
  Target.Stack.push_back(H);
}

void FullGC::seedRoots() {
  unsigned Next = 0;
  auto MarkOop = [&](Oop V) {
    if (V.isPointer() && V.object()->isOld())
      markAndPush(V.object(), Next++ % NumWorkers);
  };

  MarkOop(OM.Nil);
  {
    std::lock_guard<std::mutex> Guard(OM.RootsMutex);
    for (auto &Walker : OM.RootWalkers)
      Walker([&](Oop *Cell) { MarkOop(*Cell); });
  }
  {
    std::lock_guard<std::mutex> Guard(OM.MutatorsMutex);
    for (auto &M : OM.Mutators)
      for (Oop *Cell : M->Handles.cells())
        MarkOop(*Cell);
  }

  // Every live young object sits in the active survivor space (the
  // scavenge that precedes us emptied eden), which is linearly parseable:
  // scan it for young→old edges instead of marking young objects. Race
  // losers' abandoned copies are scanned too; their stale old referents
  // survive one cycle as floating garbage, which is harmless.
  LinearSpace &Active = OM.Survivors[OM.ActiveSurvivor];
  assert(OM.Eden.used() == 0 && "full GC requires an empty eden");
  uint8_t *Frontier = Active.frontier();
  for (uint8_t *P = Active.base(); P < Frontier;) {
    auto *H = reinterpret_cast<ObjectHeader *>(P);
    MarkOop(H->classOop());
    uint32_t N = Scavenger::liveSlots(H);
    Oop *Slots = H->slots();
    for (uint32_t I = 0; I < N; ++I)
      MarkOop(Slots[I]);
    P += H->totalBytes();
  }
}

void FullGC::traceObject(ObjectHeader *Obj, unsigned W) {
  Oop Cls = Obj->classOop();
  if (Cls.isPointer() && Cls.object()->isOld())
    markAndPush(Cls.object(), W);
  uint32_t N = Scavenger::liveSlots(Obj);
  Oop *Slots = Obj->slots();
  for (uint32_t I = 0; I < N; ++I) {
    Oop V = Slots[I];
    if (V.isPointer() && V.object()->isOld())
      markAndPush(V.object(), W);
  }
}

ObjectHeader *FullGC::popOrSteal(unsigned W) {
  Worker &Me = Workers[W];
  {
    SpinLockGuard Guard(Me.StackLock);
    if (!Me.Stack.empty()) {
      ObjectHeader *Obj = Me.Stack.back();
      Me.Stack.pop_back();
      return Obj;
    }
  }
  if (NumWorkers == 1)
    return nullptr;

  // Steal half a sibling's stack (from the front — the owner pops the
  // back, so stolen entries are the coldest). Items move stack-to-stack,
  // never held outside one, so the idle-count termination stays sound.
  chaos::point("fullgc.steal");
  for (unsigned I = 1; I < NumWorkers; ++I) {
    unsigned V = (W + I) % NumWorkers;
    std::vector<ObjectHeader *> Loot;
    {
      SpinLockGuard Guard(Workers[V].StackLock);
      auto &S = Workers[V].Stack;
      if (S.empty())
        continue;
      size_t Take = (S.size() + 1) / 2;
      Loot.assign(S.begin(), S.begin() + Take);
      S.erase(S.begin(), S.begin() + Take);
    }
    ObjectHeader *Obj = Loot.back();
    Loot.pop_back();
    if (!Loot.empty()) {
      SpinLockGuard Guard(Me.StackLock);
      Me.Stack.insert(Me.Stack.end(), Loot.begin(), Loot.end());
    }
    return Obj;
  }
  return nullptr;
}

void FullGC::markLoop(unsigned W) {
  chaos::point("fullgc.mark");
  bool Idle = false;
  for (;;) {
    ObjectHeader *Obj = popOrSteal(W);
    if (Obj) {
      if (Idle) {
        Idle = false;
        IdleWorkers.fetch_sub(1, std::memory_order_acq_rel);
      }
      traceObject(Obj, W);
      continue;
    }
    if (!Idle) {
      Idle = true;
      IdleWorkers.fetch_add(1, std::memory_order_acq_rel);
    }
    if (IdleWorkers.load(std::memory_order_acquire) == NumWorkers) {
      // Double-check: popOrSteal scans every stack, so success here means
      // a racing worker pushed between our miss and the idle-count read.
      if ((Obj = popOrSteal(W))) {
        Idle = false;
        IdleWorkers.fetch_sub(1, std::memory_order_acq_rel);
        traceObject(Obj, W);
        continue;
      }
      return;
    }
    std::this_thread::yield();
  }
}

void FullGC::sweepChunk(uint8_t *Begin, uint8_t *End, Worker &Me) {
  uint8_t *RunStart = nullptr;
  size_t SweptHere = 0, LiveHere = 0, ObjsHere = 0;
  for (uint8_t *P = Begin; P < End;) {
    auto *H = reinterpret_cast<ObjectHeader *>(P);
    size_t Bytes = H->totalBytes();
    if (H->Format == ObjectFormat::Free) {
      // A stale free block from an earlier sweep (or the tail donated when
      // this chunk was retired): it rejoins the lists as part of the
      // current run, coalescing with dead neighbors, but its bytes were
      // never live so they do not count as reclaimed.
      if (!RunStart)
        RunStart = P;
    } else if (H->isMarked()) {
      if (RunStart) {
        OM.Old.addFreeBlock(RunStart, static_cast<size_t>(P - RunStart));
        RunStart = nullptr;
      }
      H->clearMarked();
      LiveHere += Bytes;
      ++ObjsHere;
      // Rebuild the remembered set from surviving old→young pointers: the
      // set itself was not a mark root (that would retain floating
      // garbage), so recompute each survivor's flag from scratch.
      uint32_t N = Scavenger::liveSlots(H);
      Oop *Slots = H->slots();
      bool RefsYoung = false;
      for (uint32_t I = 0; I < N && !RefsYoung; ++I) {
        Oop V = Slots[I];
        RefsYoung = V.isPointer() && !V.object()->isOld();
      }
      H->setRemembered(RefsYoung);
      if (RefsYoung)
        Me.RemsetOut.push_back(H);
    } else {
      // Unmarked and not already free: freshly dead.
      if (!RunStart)
        RunStart = P;
      SweptHere += Bytes;
    }
    P += Bytes;
  }
  if (RunStart)
    OM.Old.addFreeBlock(RunStart, static_cast<size_t>(End - RunStart));
  Swept.fetch_add(SweptHere, std::memory_order_relaxed);
  Live.fetch_add(LiveHere, std::memory_order_relaxed);
  LiveObjs.fetch_add(ObjsHere, std::memory_order_relaxed);
}

void FullGC::sweepLoop(unsigned W) {
  for (;;) {
    size_t I = NextChunk.fetch_add(1, std::memory_order_relaxed);
    if (I >= ChunksToSweep)
      return;
    chaos::point("fullgc.sweep");
    OldSpace::ChunkSpan Span = OM.Old.chunkSpan(I);
    sweepChunk(Span.Begin, Span.End, Workers[W]);
  }
}

void FullGC::run() {
  ProfStateScope Prof(ProfState::FullGc);
  {
    TraceSpan Span("fullgc.mark", "gc");
    seedRoots();
    if (NumWorkers == 1) {
      markLoop(0);
    } else {
      std::vector<std::thread> Threads;
      for (unsigned W = 1; W < NumWorkers; ++W)
        Threads.emplace_back([this, W] { markLoop(W); });
      markLoop(0);
      for (auto &T : Threads)
        T.join();
    }
  }

  {
    TraceSpan Span("fullgc.sweep", "gc");
    OM.Old.sweepBegin();
    ChunksToSweep = OM.Old.chunkCount();
    if (NumWorkers == 1) {
      sweepLoop(0);
    } else {
      std::vector<std::thread> Threads;
      for (unsigned W = 1; W < NumWorkers; ++W)
        Threads.emplace_back([this, W] { sweepLoop(W); });
      sweepLoop(0);
      for (auto &T : Threads)
        T.join();
    }
    OM.Old.noteReclaimed(Swept.load(std::memory_order_relaxed));
  }

  std::vector<ObjectHeader *> NewEntries;
  for (Worker &W : Workers)
    NewEntries.insert(NewEntries.end(), W.RemsetOut.begin(),
                      W.RemsetOut.end());
  OM.RemSet.replaceEntries(std::move(NewEntries));
}
