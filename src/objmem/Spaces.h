//===-- objmem/Spaces.h - Heap spaces ---------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory regions of the Generation Scavenging heap: a linear
/// new-object space (eden), two survivor semispaces, and a chunked,
/// non-moving old space. Survivor spaces support atomic bump allocation so
/// parallel scavenge workers can copy concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_SPACES_H
#define MST_OBJMEM_SPACES_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "vkernel/SpinLock.h"

namespace mst {

/// A contiguous bump-allocated region.
class LinearSpace {
public:
  LinearSpace() = default;

  /// Allocates the backing memory. May be called once.
  void init(size_t Bytes);

  /// Bump-allocates \p Bytes using an atomic fetch-add (safe for parallel
  /// scavenge workers). \returns the block, or nullptr when full.
  uint8_t *tryBumpAtomic(size_t Bytes) {
    uint8_t *Old = Cur.fetch_add(Bytes, std::memory_order_relaxed);
    if (Old + Bytes <= Limit)
      return Old;
    // Undo the overshoot so used() stays meaningful.
    Cur.fetch_sub(Bytes, std::memory_order_relaxed);
    return nullptr;
  }

  /// Resets the bump pointer, making the whole space free again.
  void reset() { Cur.store(Base, std::memory_order_relaxed); }

  /// \returns true when \p P points into this space.
  bool contains(const void *P) const {
    auto *B = static_cast<const uint8_t *>(P);
    return B >= Base && B < Limit;
  }

  /// \returns bytes currently allocated.
  size_t used() const {
    return static_cast<size_t>(Cur.load(std::memory_order_relaxed) - Base);
  }

  /// \returns the capacity in bytes.
  size_t capacity() const { return static_cast<size_t>(Limit - Base); }

  /// \returns the start of the space (for linear scans).
  uint8_t *base() const { return Base; }

  /// \returns the current allocation frontier.
  uint8_t *frontier() const { return Cur.load(std::memory_order_relaxed); }

private:
  std::unique_ptr<uint8_t[]> Storage;
  uint8_t *Base = nullptr;
  uint8_t *Limit = nullptr;
  std::atomic<uint8_t *> Cur{nullptr};
};

/// The non-moving old generation: a list of chunks, grown on demand.
/// Allocation is serialized by a spin lock; old-space allocation happens
/// only at bootstrap, at tenuring time, and for objects too large for eden,
/// so contention is rare (the paper's criterion for serialization).
class OldSpace {
public:
  /// \param ChunkBytes size of each chunk.
  /// \param LocksEnabled false for the baseline-BS (no-MP) build.
  OldSpace(size_t ChunkBytes, bool LocksEnabled)
      : ChunkBytes(ChunkBytes), Lock(LocksEnabled, "oldspace") {}

  /// Allocates \p Bytes from old space. Never fails short of exhausting
  /// the host's memory. \returns the block.
  uint8_t *allocate(size_t Bytes);

  /// \returns total bytes allocated from old space.
  size_t used() const { return Used.load(std::memory_order_relaxed); }

  /// \returns true when \p P points into any old-space chunk. Heap
  /// verification support; takes the allocation lock.
  bool contains(const void *P);

private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> Mem;
    uint8_t *Base = nullptr; // 16-aligned usable start
    size_t Bytes = 0;        // usable length
  };

  size_t ChunkBytes;
  SpinLock Lock;
  std::vector<Chunk> Chunks;
  uint8_t *Cur = nullptr;
  uint8_t *Limit = nullptr;
  std::atomic<size_t> Used{0};
};

} // namespace mst

#endif // MST_OBJMEM_SPACES_H
