//===-- objmem/Spaces.h - Heap spaces ---------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory regions of the Generation Scavenging heap: a linear
/// new-object space (eden), two survivor semispaces, and a chunked,
/// non-moving old space. Survivor spaces support atomic bump allocation so
/// parallel scavenge workers can copy concurrently.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_SPACES_H
#define MST_OBJMEM_SPACES_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vkernel/SpinLock.h"

namespace mst {

/// A contiguous bump-allocated region.
class LinearSpace {
public:
  LinearSpace() = default;

  /// Allocates the backing memory. May be called once.
  void init(size_t Bytes);

  /// Bump-allocates \p Bytes using an atomic fetch-add (safe for parallel
  /// scavenge workers). \returns the block, or nullptr when full.
  uint8_t *tryBumpAtomic(size_t Bytes) {
    uint8_t *Old = Cur.fetch_add(Bytes, std::memory_order_relaxed);
    if (Old + Bytes <= Limit)
      return Old;
    // Undo the overshoot so used() stays meaningful.
    Cur.fetch_sub(Bytes, std::memory_order_relaxed);
    return nullptr;
  }

  /// Resets the bump pointer, making the whole space free again.
  void reset() { Cur.store(Base, std::memory_order_relaxed); }

  /// \returns true when \p P points into this space.
  bool contains(const void *P) const {
    auto *B = static_cast<const uint8_t *>(P);
    return B >= Base && B < Limit;
  }

  /// \returns bytes currently allocated.
  size_t used() const {
    return static_cast<size_t>(Cur.load(std::memory_order_relaxed) - Base);
  }

  /// \returns the capacity in bytes.
  size_t capacity() const { return static_cast<size_t>(Limit - Base); }

  /// \returns the start of the space (for linear scans).
  uint8_t *base() const { return Base; }

  /// \returns the current allocation frontier.
  uint8_t *frontier() const { return Cur.load(std::memory_order_relaxed); }

private:
  std::unique_ptr<uint8_t[]> Storage;
  uint8_t *Base = nullptr;
  uint8_t *Limit = nullptr;
  std::atomic<uint8_t *> Cur{nullptr};
};

/// The non-moving old generation: a list of chunks, grown on demand, plus
/// per-size-class free lists refilled by the full collector's sweep.
/// Allocation is serialized by a spin lock; old-space allocation happens
/// only at bootstrap, at tenuring time, and for objects too large for eden,
/// so contention is rare (the paper's criterion for serialization).
///
/// Free-list format: each free block is a dead object rewritten in place to
/// ObjectFormat::Free — the header's class word carries the raw next-block
/// pointer, the body is filled with FreeZapWord (see ObjectHeader.h). Exact
/// size classes cover blocks up to OverflowClassBytes in 8-byte steps; one
/// overflow list holds everything larger, allocated first-fit with a split.
class OldSpace {
public:
  /// Free blocks of exactly OverflowClassBytes + anything larger land on
  /// the overflow list; below that, list I holds blocks of exactly
  /// MinBlockBytes + I*8 bytes.
  static constexpr size_t NumExactClasses = 64;
  static constexpr size_t MinBlockBytes = 24; // == sizeof(ObjectHeader)
  static constexpr size_t OverflowClassBytes =
      MinBlockBytes + NumExactClasses * 8;

  /// \param ChunkBytes size of each chunk.
  /// \param LocksEnabled false for the baseline-BS (no-MP) build.
  OldSpace(size_t ChunkBytes, bool LocksEnabled)
      : ChunkBytes(ChunkBytes), Lock(LocksEnabled, "oldspace") {}

  /// Allocates \p Bytes from old space, preferring a recycled free block
  /// over bump allocation. Growth respects the configured ceiling: when
  /// satisfying the request needs a new chunk that would push usable
  /// capacity past setCeiling() — or when fault injection refuses the
  /// growth ("oldspace.grow.fail") — allocation fails instead of taking
  /// more memory from the host. \returns the block, or nullptr on
  /// refusal; callers walk the memory-pressure recovery ladder, or fall
  /// back to allocateOverCeiling() when no rung is sound for them.
  uint8_t *allocate(size_t Bytes);

  /// allocate() for callers that can neither back out nor walk the
  /// recovery ladder: an evacuation mid-copy (forwarding pointers already
  /// installed) and VM-metadata allocation (compiled methods, symbols —
  /// raw-oop holders that must not trigger a moving collection). Ignores
  /// the ceiling (and fault injection) and overshoots rather than wedge
  /// or panic. The overshoot is bounded — by the young generation being
  /// evacuated, or by the program text driving the compiler — and the
  /// pressure ladder refuses mutator work while used() stays at or past
  /// the ceiling, so it is transient, not a leak.
  uint8_t *allocateOverCeiling(size_t Bytes);

  /// Caps usable capacity at \p Bytes (0 = unbounded). Set before the
  /// space is shared between threads; allocate() reads it unlocked.
  void setCeiling(size_t Bytes) { Ceiling = Bytes; }

  /// \returns the usable-capacity ceiling (0 = unbounded).
  size_t ceiling() const { return Ceiling; }

  /// \returns bytes currently held by live allocations (bump allocations
  /// plus free-list reuse, minus bytes reclaimed by sweeps).
  size_t used() const { return Used.load(std::memory_order_relaxed); }

  /// \returns bytes currently parked on the free lists.
  size_t freeBytes() const { return FreeBytes.load(std::memory_order_relaxed); }

  /// \returns un-carved bytes left in the open chunk's bump region —
  /// obtainable without growing, but on neither the free lists nor
  /// used(). Headroom accounting must include it or it undercounts by up
  /// to a whole chunk. Racy snapshot; exact only with allocation quiesced.
  size_t bumpRemaining() const {
    return BumpRemaining.load(std::memory_order_relaxed);
  }

  /// \returns total usable bytes across all chunks.
  size_t capacity() const { return Capacity.load(std::memory_order_relaxed); }

  /// \returns true when \p P points into any old-space chunk. Heap
  /// verification support; takes the allocation lock.
  bool contains(const void *P);

  /// --- Sweep support (world stopped; the full collector only) ------------

  /// A chunk's walkable extent: every byte in [Begin, End) is covered by
  /// consecutive object or free-block headers.
  struct ChunkSpan {
    uint8_t *Begin;
    uint8_t *End;
  };

  size_t chunkCount();
  ChunkSpan chunkSpan(size_t I);

  /// Empties every free list (the sweep rebuilds them from scratch; stale
  /// blocks are rediscovered as it walks the chunks).
  void sweepBegin();

  /// Formats [P, P+Bytes) as a free block and threads it onto the fitting
  /// list. \p Bytes must be 8-aligned and >= sizeof(ObjectHeader).
  void addFreeBlock(uint8_t *P, size_t Bytes);

  /// Credits \p Bytes of freshly dead objects back to the space: used()
  /// drops by that amount. Recycled free blocks are not re-counted.
  void noteReclaimed(size_t Bytes);

  /// Walks every free list checking each block is inside a chunk, carries
  /// the Free format and magic, and has an intact zap-filled body, and
  /// that the per-list totals add up to freeBytes(). \returns true when
  /// consistent; on failure describes the first violation in \p Error.
  bool verifyFreeLists(std::string *Error = nullptr);

private:
  struct Chunk {
    std::unique_ptr<uint8_t[]> Mem;
    uint8_t *Base = nullptr; // 16-aligned usable start
    size_t Bytes = 0;        // usable length
    uint8_t *Top = nullptr;  // walkable end: headers cover [Base, Top)
  };

  /// allocate()/allocateOverCeiling() shared body; OverCeiling skips the
  /// ceiling refusal and the injected growth fault.
  uint8_t *allocateImpl(size_t Bytes, bool OverCeiling);

  /// Formats and threads a free block onto the fitting list. Lock held.
  void pushFreeBlockLocked(uint8_t *P, size_t Bytes);

  /// Carves \p Bytes off the front of free block \p Block (of \p BlockBytes
  /// total), returning any usable remainder to the lists. Lock held.
  uint8_t *splitFreeBlock(uint8_t *Block, size_t BlockBytes, size_t Bytes);

  /// Pops a fitting free block, or nullptr. Lock held.
  uint8_t *takeFromFreeLists(size_t Bytes);

  /// contains() with the lock already held.
  bool containsLocked(const uint8_t *B) const;

  size_t ChunkBytes;
  size_t Ceiling = 0; // usable-capacity cap; 0 = unbounded
  SpinLock Lock;
  std::vector<Chunk> Chunks;
  uint8_t *Cur = nullptr;
  uint8_t *Limit = nullptr;
  std::atomic<size_t> Used{0};
  std::atomic<size_t> FreeBytes{0};
  std::atomic<size_t> Capacity{0};
  std::atomic<size_t> BumpRemaining{0}; // Limit - Cur, published per alloc.
  /// Heads of the per-size-class lists ([NumExactClasses] is overflow);
  /// links live in the blocks' class words.
  uint8_t *FreeHeads[NumExactClasses + 1] = {};
};

} // namespace mst

#endif // MST_OBJMEM_SPACES_H
