//===-- objmem/MemoryConfig.h - Object memory configuration -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the object memory. The allocation-space size `s` and
/// the allocator policy are first-class experimental knobs: the paper
/// argues (§3.1) that scavenge frequency is roughly r/s and that a
/// k-processor system wants a k·s allocation space, and suspects (§4) that
/// contention in storage allocation is a major overhead source, proposing
/// replication of the new-object space — our Tlab allocator.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_MEMORYCONFIG_H
#define MST_OBJMEM_MEMORYCONFIG_H

#include <cstddef>
#include <cstdint>

namespace mst {

/// Policy for allocating in the new-object space (paper Table 3 column 1 vs
/// the §4 improvement).
enum class AllocatorKind : uint8_t {
  /// One bump pointer guarded by a spin lock — MS as published: "memory
  /// allocation ... amounts to little more than incrementing a pointer".
  Serialized,
  /// Per-interpreter allocation buffers carved out of eden — "replication
  /// of the new-object space should have significant benefits".
  Tlab,
};

/// Object memory configuration.
struct MemoryConfig {
  /// Size of the allocation space (eden), the paper's `s`. MS used 80K
  /// bytes; we default larger because modern allocation rates are higher,
  /// and sweep it in bench_scavenge.
  size_t EdenBytes = 4u << 20;

  /// Size of each survivor semispace.
  size_t SurvivorBytes = 1u << 20;

  /// Size of each old-space chunk; old space grows by whole chunks.
  size_t OldChunkBytes = 8u << 20;

  /// Scavenges an object must survive before being tenured into old space.
  uint8_t TenureAge = 2;

  /// Number of processors applied to one scavenge (paper §3.1: "It may be
  /// possible to apply multiple processors to the garbage collection
  /// task"). 1 = the serial scavenger MS shipped with.
  unsigned ScavengeWorkers = 1;

  /// Allocation policy for the new-object space.
  AllocatorKind Allocator = AllocatorKind::Serialized;

  /// Bytes per thread-local allocation buffer refill (Tlab policy only).
  size_t TlabBytes = 16u * 1024;

  /// Full (mark-sweep) collection of old space. BS/MS never reclaimed
  /// tenured garbage — old space only grew — which no long-running system
  /// survives; the full collector is our departure from the paper.
  bool FullGcEnabled = true;

  /// Old-space occupancy that arms the growth-threshold trigger: when a
  /// scavenge's tenuring pushes used old bytes past the current trigger, a
  /// full collection runs inside the same pause. After each full GC the
  /// trigger is re-armed at max(threshold, live * growth factor), so a
  /// genuinely growing live set does not thrash the collector.
  size_t FullGcThresholdBytes = 64u << 20;

  /// Headroom factor applied to the post-GC live size when re-arming the
  /// trigger (the "tenure-pressure heuristic").
  double FullGcGrowthFactor = 1.5;

  /// Number of threads applied to one full collection (marking and
  /// sweeping both fan out). Clamped to 1 when MpSupport is off, since the
  /// baseline build's no-op locks cannot protect the shared mark stacks.
  unsigned FullGcWorkers = 4;

  /// When false every lock in the object memory is a no-op: the
  /// "baseline BS" uniprocessor configuration of Table 2.
  bool MpSupport = true;
};

} // namespace mst

#endif // MST_OBJMEM_MEMORYCONFIG_H
