//===-- objmem/MemoryConfig.h - Object memory configuration -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration of the object memory. The allocation-space size `s` and
/// the allocator policy are first-class experimental knobs: the paper
/// argues (§3.1) that scavenge frequency is roughly r/s and that a
/// k-processor system wants a k·s allocation space, and suspects (§4) that
/// contention in storage allocation is a major overhead source, proposing
/// replication of the new-object space — our Tlab allocator.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_MEMORYCONFIG_H
#define MST_OBJMEM_MEMORYCONFIG_H

#include <cstddef>
#include <cstdint>

namespace mst {

/// Policy for allocating in the new-object space (paper Table 3 column 1 vs
/// the §4 improvement).
enum class AllocatorKind : uint8_t {
  /// One bump pointer guarded by a spin lock — MS as published: "memory
  /// allocation ... amounts to little more than incrementing a pointer".
  Serialized,
  /// Per-interpreter allocation buffers carved out of eden — "replication
  /// of the new-object space should have significant benefits".
  Tlab,
};

/// Object memory configuration.
struct MemoryConfig {
  /// Size of the allocation space (eden), the paper's `s`. MS used 80K
  /// bytes; we default larger because modern allocation rates are higher,
  /// and sweep it in bench_scavenge.
  size_t EdenBytes = 4u << 20;

  /// Size of each survivor semispace.
  size_t SurvivorBytes = 1u << 20;

  /// Size of each old-space chunk; old space grows by whole chunks.
  size_t OldChunkBytes = 8u << 20;

  /// Scavenges an object must survive before being tenured into old space.
  uint8_t TenureAge = 2;

  /// Number of processors applied to one scavenge (paper §3.1: "It may be
  /// possible to apply multiple processors to the garbage collection
  /// task"). 1 = the serial scavenger MS shipped with.
  unsigned ScavengeWorkers = 1;

  /// Allocation policy for the new-object space.
  AllocatorKind Allocator = AllocatorKind::Serialized;

  /// Bytes per thread-local allocation buffer refill (Tlab policy only).
  size_t TlabBytes = 16u * 1024;

  /// Full (mark-sweep) collection of old space. BS/MS never reclaimed
  /// tenured garbage — old space only grew — which no long-running system
  /// survives; the full collector is our departure from the paper.
  bool FullGcEnabled = true;

  /// Old-space occupancy that arms the growth-threshold trigger: when a
  /// scavenge's tenuring pushes used old bytes past the current trigger, a
  /// full collection runs inside the same pause. After each full GC the
  /// trigger is re-armed at max(threshold, live * growth factor), so a
  /// genuinely growing live set does not thrash the collector.
  size_t FullGcThresholdBytes = 64u << 20;

  /// Headroom factor applied to the post-GC live size when re-arming the
  /// trigger (the "tenure-pressure heuristic").
  double FullGcGrowthFactor = 1.5;

  /// Number of threads applied to one full collection (marking and
  /// sweeping both fan out). Clamped to 1 when MpSupport is off, since the
  /// baseline build's no-op locks cannot protect the shared mark stacks.
  unsigned FullGcWorkers = 4;

  /// Ceiling on total heap bytes: eden + both survivor spaces + old
  /// space's live bytes and usable capacity. 0 = unbounded (old space
  /// grows chunk by chunk forever, the pre-ceiling behaviour). With a
  /// ceiling, allocation failure walks the recovery ladder — scavenge,
  /// full collection, bounded old-space growth — and finally surfaces as
  /// a null oop that
  /// the VM layer raises into the requesting process as OutOfMemoryError.
  /// The Firefly had 16 MB for everything; exhaustion is a normal
  /// operating condition, not a crash. When this is 0 the MST_MAX_HEAP_BYTES
  /// environment variable supplies a default ceiling (the CI small-heap
  /// lane's hook); an explicit value here always wins.
  size_t MaxHeapBytes = 0;

  /// Low-space watermark. At the end of every scavenge the obtainable
  /// old-space headroom (bytes still allocatable under the ceiling plus
  /// recycled free-list bytes) is compared against this; on falling below
  /// it the registered low-space semaphore is signalled, once per
  /// crossing (re-armed when headroom recovers). Meaningful only with a
  /// ceiling.
  size_t LowSpaceWatermarkBytes = 256u * 1024;

  /// Safepoint watchdog deadline (milliseconds): a stop-the-world
  /// rendezvous stalled longer than this emits a postmortem panic dump
  /// naming the unresponsive mutators — and aborts when no panic handler
  /// is installed — instead of hanging forever. 0 = no watchdog.
  uint64_t WatchdogMillis = 0;

  /// Runs verifyHeap() at the end of every collection, with the world
  /// still stopped, routing any failure through panic(). Expensive (full
  /// reachability walk per GC); stress suites only.
  bool VerifyAfterGc = false;

  /// When false every lock in the object memory is a no-op: the
  /// "baseline BS" uniprocessor configuration of Table 2.
  bool MpSupport = true;
};

} // namespace mst

#endif // MST_OBJMEM_MEMORYCONFIG_H
