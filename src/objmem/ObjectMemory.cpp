//===-- objmem/ObjectMemory.cpp - Generation-scavenged heap -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/ObjectMemory.h"

#include <cstring>

#include "objmem/Scavenger.h"
#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "support/Timer.h"

using namespace mst;

namespace {
/// Thread-local pointer to the calling thread's mutator context within
/// whichever ObjectMemory it registered with. One memory per thread at a
/// time is sufficient for this system (each interpreter process serves a
/// single VM).
thread_local MutatorContext *CurrentMutator = nullptr;
} // namespace

ObjectMemory::ObjectMemory(const MemoryConfig &Config)
    : Config(Config), RemSet(Config.MpSupport),
      Old(Config.OldChunkBytes, Config.MpSupport),
      AllocLock(Config.MpSupport, "alloc") {
  Eden.init(Config.EdenBytes);
  Survivors[0].init(Config.SurvivorBytes);
  Survivors[1].init(Config.SurvivorBytes);
}

ObjectMemory::~ObjectMemory() = default;

MutatorContext *ObjectMemory::registerMutator(const std::string &Name) {
  assert(CurrentMutator == nullptr && "thread already registered");
  auto M = std::make_unique<MutatorContext>();
  M->Name = Name;
  if (!Name.empty())
    setTraceThreadName(Name);
  std::lock_guard<std::mutex> Guard(MutatorsMutex);
  M->Id = static_cast<unsigned>(Mutators.size());
  CurrentMutator = M.get();
  Mutators.push_back(std::move(M));
  Sp.registerMutator();
  return CurrentMutator;
}

void ObjectMemory::unregisterMutator() {
  assert(CurrentMutator && "thread not registered");
  assert(CurrentMutator->Handles.cells().empty() &&
         "live handles at mutator exit");
  // Drop the TLAB (the remaining space is abandoned until the next
  // scavenge) and deactivate. The MutatorContext object itself stays owned
  // by the Mutators vector so handle-stack iteration never races.
  CurrentMutator->TlabCur = CurrentMutator->TlabEnd = nullptr;
  CurrentMutator = nullptr;
  Sp.unregisterMutator();
}

MutatorContext &ObjectMemory::mutator() {
  assert(CurrentMutator && "calling thread is not a registered mutator");
  return *CurrentMutator;
}

void ObjectMemory::initHeader(ObjectHeader *H, Oop Cls, uint32_t Slots,
                              ObjectFormat Format, uint32_t ByteLen,
                              bool IsOld) {
  H->setClassOop(Cls);
  H->SlotCount = Slots;
  H->Hash = NextHash.fetch_add(1, std::memory_order_relaxed);
  H->ByteLength = Format == ObjectFormat::Bytes ? ByteLen : 0;
  H->Format = Format;
  H->Flags = IsOld ? FlagOld : 0;
  H->Age = 0;
  H->Unused = 0;
}

void ObjectMemory::fillWithNil(ObjectHeader *H) {
  Oop *Slots = H->slots();
  for (uint32_t I = 0; I < H->SlotCount; ++I)
    Slots[I] = Nil;
}

uint8_t *ObjectMemory::allocateNewRaw(size_t TotalBytes, bool &WentOld) {
  WentOld = false;
  // Oversized requests go straight to old space; they would thrash eden.
  if (TotalBytes > Config.EdenBytes / 4) {
    WentOld = true;
    return Old.allocate(TotalBytes);
  }

  MutatorContext &M = mutator();
  for (;;) {
    // Allocation is a GC point: honor a pending stop-the-world first.
    if (Sp.pollNeeded())
      Sp.pollSlow();

    if (Config.Allocator == AllocatorKind::Tlab) {
      if (M.TlabCur && M.TlabCur + TotalBytes <= M.TlabEnd) {
        uint8_t *Result = M.TlabCur;
        M.TlabCur += TotalBytes;
        return Result;
      }
      // Refill the thread-local buffer from eden.
      size_t Refill = Config.TlabBytes > TotalBytes ? Config.TlabBytes
                                                    : TotalBytes;
      if (uint8_t *Buf = Eden.tryBumpAtomic(Refill)) {
        M.TlabCur = Buf;
        M.TlabEnd = Buf + Refill;
        continue;
      }
    } else {
      // Serialized policy: MS's published design — a spin lock around a
      // bump pointer ("little more than incrementing a pointer").
      AllocLock.lock();
      uint8_t *Result = Eden.tryBumpAtomic(TotalBytes);
      AllocLock.unlock();
      if (Result)
        return Result;
    }

    // Eden exhausted: scavenge and retry.
    if (Sp.requestStopTheWorld()) {
      performScavenge();
      Sp.resume();
    }
    // If requestStopTheWorld returned false another thread's scavenge just
    // completed; either way eden has been reset — retry the allocation.
  }
}

Oop ObjectMemory::allocateNew(Oop Cls, uint32_t Slots, ObjectFormat Format,
                              uint32_t ByteLen) {
  size_t Total = sizeof(ObjectHeader) + size_t(Slots) * sizeof(Oop);
  // The class oop must survive the potential scavenge inside the raw
  // allocation (classes are normally old, but nothing forbids young ones).
  Handle ClsHandle(handles(), Cls);
  bool WentOld = false;
  uint8_t *Mem = allocateNewRaw(Total, WentOld);
  auto *H = reinterpret_cast<ObjectHeader *>(Mem);
  initHeader(H, ClsHandle.get(), Slots, Format, ByteLen, WentOld);
  if (Format == ObjectFormat::Bytes)
    std::memset(H->bytes(), 0, size_t(Slots) * sizeof(Oop));
  else
    fillWithNil(H);
  return Oop::fromObject(H);
}

Oop ObjectMemory::allocateOld(Oop Cls, uint32_t Slots, ObjectFormat Format,
                              uint32_t ByteLen) {
  size_t Total = sizeof(ObjectHeader) + size_t(Slots) * sizeof(Oop);
  auto *H = reinterpret_cast<ObjectHeader *>(Old.allocate(Total));
  initHeader(H, Cls, Slots, Format, ByteLen, /*IsOld=*/true);
  if (Format == ObjectFormat::Bytes)
    std::memset(H->bytes(), 0, size_t(Slots) * sizeof(Oop));
  else
    fillWithNil(H);
  return Oop::fromObject(H);
}

Oop ObjectMemory::allocatePointers(Oop Cls, uint32_t Slots) {
  return allocateNew(Cls, Slots, ObjectFormat::Pointers, 0);
}

Oop ObjectMemory::allocateBytes(Oop Cls, uint32_t ByteLen) {
  return allocateNew(Cls, slotsForBytes(ByteLen), ObjectFormat::Bytes,
                     ByteLen);
}

Oop ObjectMemory::allocateContextObject(Oop Cls, uint32_t Slots) {
  assert(Slots > ContextSpSlotIndex && "context too small for its header");
  return allocateNew(Cls, Slots, ObjectFormat::Context, 0);
}

Oop ObjectMemory::allocateOldPointers(Oop Cls, uint32_t Slots) {
  return allocateOld(Cls, Slots, ObjectFormat::Pointers, 0);
}

Oop ObjectMemory::allocateOldBytes(Oop Cls, uint32_t ByteLen) {
  return allocateOld(Cls, slotsForBytes(ByteLen), ObjectFormat::Bytes,
                     ByteLen);
}

Oop ObjectMemory::allocateOldContextObject(Oop Cls, uint32_t Slots) {
  assert(Slots > ContextSpSlotIndex && "context too small for its header");
  return allocateOld(Cls, Slots, ObjectFormat::Context, 0);
}

void ObjectMemory::addRootWalker(RootWalker Walker) {
  std::lock_guard<std::mutex> Guard(RootsMutex);
  RootWalkers.push_back(std::move(Walker));
}

void ObjectMemory::addPreScavengeHook(std::function<void()> Hook) {
  std::lock_guard<std::mutex> Guard(RootsMutex);
  PreScavengeHooks.push_back(std::move(Hook));
}

void ObjectMemory::scavengeNow() {
  while (!Sp.requestStopTheWorld()) {
    // Another thread's scavenge ran; ours was explicitly requested, so
    // keep trying until we are the coordinator.
  }
  performScavenge();
  Sp.resume();
}

void ObjectMemory::performScavenge() {
  TraceSpan Span("scavenge", "gc");
  uint64_t StartNs = Telemetry::nowNs();
  Stopwatch Watch;
  uint64_t EdenUsedNow = Eden.used();

  {
    std::lock_guard<std::mutex> Guard(RootsMutex);
    for (auto &Hook : PreScavengeHooks)
      Hook();
  }
  // Flush every mutator's TLAB: the unconsumed tail becomes a dead hole in
  // eden (never scanned — the scavenger traces from roots only).
  {
    std::lock_guard<std::mutex> Guard(MutatorsMutex);
    for (auto &M : Mutators)
      M->TlabCur = M->TlabEnd = nullptr;
  }

  Scavenger Scav(*this);
  Scav.run();

  double Pause = Watch.seconds();
  PauseHist.record(Telemetry::nowNs() - StartNs);
  ScavengesCtr.add();
  BytesCopiedCtr.add(Scav.bytesCopied());
  BytesTenuredCtr.add(Scav.bytesTenured());
  Span.setArg(Scav.bytesCopied());
  std::lock_guard<std::mutex> Guard(StatsMutex);
  ++Stats.Scavenges;
  Stats.LastPauseSec = Pause;
  Stats.TotalPauseSec += Pause;
  if (Pause > Stats.MaxPauseSec)
    Stats.MaxPauseSec = Pause;
  Stats.BytesCopied += Scav.bytesCopied();
  Stats.BytesTenured += Scav.bytesTenured();
  Stats.ObjectsCopied += Scav.objectsCopied();
  Stats.ObjectsTenured += Scav.objectsTenured();
  Stats.EdenBytesAllocated += EdenUsedNow;
}

ScavengeStats ObjectMemory::statsSnapshot() {
  std::lock_guard<std::mutex> Guard(StatsMutex);
  return Stats;
}
