//===-- objmem/ObjectMemory.cpp - Generation-scavenged heap -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/ObjectMemory.h"

#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "objmem/FullGC.h"
#include "objmem/Scavenger.h"
#include "obs/Profiler.h"
#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "support/Panic.h"
#include "support/Timer.h"
#include "vkernel/Chaos.h"

using namespace mst;

namespace {
/// Thread-local pointer to the calling thread's mutator context within
/// whichever ObjectMemory it registered with. One memory per thread at a
/// time is sufficient for this system (each interpreter process serves a
/// single VM).
thread_local MutatorContext *CurrentMutator = nullptr;

/// The CI small-heap lane exports MST_MAX_HEAP_BYTES to impose a heap
/// ceiling on every memory that does not configure one of its own, so the
/// pressure-recovery ladder runs under the whole stress suite without
/// per-test plumbing. A config that sets an explicit ceiling always wins.
MemoryConfig withEnvCeiling(MemoryConfig C) {
  if (C.MaxHeapBytes == 0)
    if (const char *S = std::getenv("MST_MAX_HEAP_BYTES"))
      if (*S)
        C.MaxHeapBytes = std::strtoull(S, nullptr, 0);
  return C;
}
} // namespace

ObjectMemory::ObjectMemory(const MemoryConfig &InitialConfig)
    : Config(withEnvCeiling(InitialConfig)), RemSet(Config.MpSupport),
      Old(Config.OldChunkBytes, Config.MpSupport),
      AllocLock(Config.MpSupport, "alloc"),
      FullGcTrigger(Config.FullGcThresholdBytes) {
  Eden.init(Config.EdenBytes);
  Survivors[0].init(Config.SurvivorBytes);
  Survivors[1].init(Config.SurvivorBytes);
  if (Config.MaxHeapBytes) {
    // The ceiling covers the whole heap; eden and the survivor spaces are
    // committed up front, so old space gets whatever remains.
    size_t Fixed = Config.EdenBytes + 2 * Config.SurvivorBytes;
    if (Config.MaxHeapBytes <= Fixed + OldSpace::MinBlockBytes)
      panic("MaxHeapBytes (" + std::to_string(Config.MaxHeapBytes) +
            ") leaves no old space after eden + survivors (" +
            std::to_string(Fixed) + " bytes)");
    Old.setCeiling(Config.MaxHeapBytes - Fixed);
  }
  Sp.setWatchdogMillis(Config.WatchdogMillis);
  HeapPanicSection =
      panicRegisterSection("heap", [this] { return heapSummary(); });
  SafepointPanicSection = panicRegisterSection(
      "safepoint", [this] { return Sp.describeMutators(); });
}

ObjectMemory::~ObjectMemory() {
  panicUnregisterSection(HeapPanicSection);
  panicUnregisterSection(SafepointPanicSection);
}

MutatorContext *ObjectMemory::registerMutator(const std::string &Name) {
  assert(CurrentMutator == nullptr && "thread already registered");
  auto M = std::make_unique<MutatorContext>();
  M->Name = Name;
  if (!Name.empty())
    setTraceThreadName(Name);
  std::lock_guard<std::mutex> Guard(MutatorsMutex);
  M->Id = static_cast<unsigned>(Mutators.size());
  CurrentMutator = M.get();
  Mutators.push_back(std::move(M));
  Sp.registerMutator(Name.empty()
                         ? "mutator-" + std::to_string(CurrentMutator->Id)
                         : Name);
  return CurrentMutator;
}

void ObjectMemory::unregisterMutator() {
  assert(CurrentMutator && "thread not registered");
  assert(CurrentMutator->Handles.cells().empty() &&
         "live handles at mutator exit");
  // Drop the TLAB (the remaining space is abandoned until the next
  // scavenge) and deactivate. The MutatorContext object itself stays owned
  // by the Mutators vector so handle-stack iteration never races.
  CurrentMutator->TlabCur = CurrentMutator->TlabEnd = nullptr;
  CurrentMutator = nullptr;
  Sp.unregisterMutator();
}

MutatorContext &ObjectMemory::mutator() {
  assert(CurrentMutator && "calling thread is not a registered mutator");
  return *CurrentMutator;
}

void ObjectMemory::initHeader(ObjectHeader *H, Oop Cls, uint32_t Slots,
                              ObjectFormat Format, uint32_t ByteLen,
                              bool IsOld) {
  H->setClassOop(Cls);
  H->SlotCount = Slots;
  H->Hash = NextHash.fetch_add(1, std::memory_order_relaxed);
  H->ByteLength = Format == ObjectFormat::Bytes ? ByteLen : 0;
  H->Format = Format;
  H->Flags.store(IsOld ? FlagOld : 0, std::memory_order_relaxed);
  H->Age = 0;
  H->Unused = 0;
}

void ObjectMemory::fillWithNil(ObjectHeader *H) {
  Oop *Slots = H->slots();
  for (uint32_t I = 0; I < H->SlotCount; ++I)
    Slots[I] = Nil;
}

uint8_t *ObjectMemory::allocateNewRaw(size_t TotalBytes, bool &WentOld) {
  WentOld = false;
  // Oversized requests go straight to old space; they would thrash eden.
  // "Bigger than eden" is the degenerate case: no number of scavenges
  // could ever make such a request fit, so it must never enter the retry
  // loop below.
  if (TotalBytes > Config.EdenBytes / 4 || TotalBytes > Eden.capacity()) {
    WentOld = true;
    uint8_t *Mem = allocateOldRescuing(TotalBytes);
    if (Mem)
      TenuredBytesCtr.add(TotalBytes);
    return Mem;
  }

  MutatorContext &M = mutator();
  // Rung 1 of the recovery ladder: scavenge on eden exhaustion. Bounded:
  // when this many pressure scavenges cannot make the request fit (rival
  // allocators draining eden as fast as it empties, a TLAB refill policy
  // larger than eden, injected allocation faults), divert into old space
  // rather than spinning forever.
  unsigned ScavengesLeft = 3;
  for (;;) {
    // Allocation is a GC point: honor a pending stop-the-world first.
    if (Sp.pollNeeded())
      Sp.pollSlow();

    if (!chaos::failPoint("alloc.fail")) {
      if (Config.Allocator == AllocatorKind::Tlab) {
        if (M.TlabCur && M.TlabCur + TotalBytes <= M.TlabEnd) {
          uint8_t *Result = M.TlabCur;
          M.TlabCur += TotalBytes;
          return Result;
        }
        // Refill the thread-local buffer from eden. When the refill no
        // longer fits — eden nearly full, or TlabBytes misconfigured
        // beyond eden's size — fall back to a direct bump of just this
        // request before declaring eden exhausted.
        size_t Refill = Config.TlabBytes > TotalBytes ? Config.TlabBytes
                                                      : TotalBytes;
        if (uint8_t *Buf = Eden.tryBumpAtomic(Refill)) {
          M.TlabCur = Buf;
          M.TlabEnd = Buf + Refill;
          continue;
        }
        if (uint8_t *Result = Eden.tryBumpAtomic(TotalBytes))
          return Result;
      } else {
        // Serialized policy: MS's published design — a spin lock around a
        // bump pointer ("little more than incrementing a pointer").
        AllocLock.lock();
        uint8_t *Result = Eden.tryBumpAtomic(TotalBytes);
        AllocLock.unlock();
        if (Result)
          return Result;
      }
    }

    // With old space at (or overshot past) the ceiling, scavenging could
    // only evacuate further past it — go straight to the rescue rung,
    // whose full collection either recovers usage to below the ceiling
    // or surfaces an orderly out-of-memory.
    if (ScavengesLeft == 0 || oldAtCeiling()) {
      // Rung 3: divert this request into old space (rung 2, the full
      // collection, runs inside the rescue when old space refuses).
      WentOld = true;
      LadderGrowCtr.add();
      uint8_t *Mem = allocateOldRescuing(TotalBytes);
      if (Mem)
        TenuredBytesCtr.add(TotalBytes);
      return Mem;
    }
    --ScavengesLeft;
    LadderScavengeCtr.add();
    if (Sp.requestStopTheWorld()) {
      performScavenge();
      Sp.resume();
    }
    // If requestStopTheWorld returned false another thread's scavenge just
    // completed; either way eden has been reset — retry the allocation.
  }
}

uint8_t *ObjectMemory::allocateOldRescuing(size_t TotalBytes) {
  if (uint8_t *Mem = Old.allocate(TotalBytes))
    return Mem;
  if (Config.FullGcEnabled) {
    // Rung 2: a full collection reclaims tenured garbage and coalesces
    // free runs, often freeing a block big enough under the same ceiling.
    LadderFullGcCtr.add();
    fullCollect();
    if (uint8_t *Mem = Old.allocate(TotalBytes))
      return Mem;
  }
  // Every rung failed: out of memory. The caller propagates a null oop,
  // which the VM layer raises into the requesting process as
  // OutOfMemoryError — the VM itself keeps running.
  LadderOomCtr.add();
  return nullptr;
}

Oop ObjectMemory::allocateNew(Oop Cls, uint32_t Slots, ObjectFormat Format,
                              uint32_t ByteLen) {
  size_t Total = sizeof(ObjectHeader) + size_t(Slots) * sizeof(Oop);
  // The class oop must survive the potential scavenge inside the raw
  // allocation (classes are normally old, but nothing forbids young ones).
  Handle ClsHandle(handles(), Cls);
  bool WentOld = false;
  uint8_t *Mem = allocateNewRaw(Total, WentOld);
  if (!Mem)
    return Oop(); // Out of memory: the VM layer raises OutOfMemoryError.
  auto *H = reinterpret_cast<ObjectHeader *>(Mem);
  initHeader(H, ClsHandle.get(), Slots, Format, ByteLen, WentOld);
  if (Format == ObjectFormat::Bytes)
    std::memset(H->bytes(), 0, size_t(Slots) * sizeof(Oop));
  else
    fillWithNil(H);
  // Allocation-site profile: every new-space allocation funnels through
  // here, so one sampled hook covers objects and contexts alike.
  if (Profiler::enabled())
    profNoteAllocation(ClsHandle.get().bits());
  return Oop::fromObject(H);
}

Oop ObjectMemory::allocateOld(Oop Cls, uint32_t Slots, ObjectFormat Format,
                              uint32_t ByteLen) {
  size_t Total = sizeof(ObjectHeader) + size_t(Slots) * sizeof(Oop);
  uint8_t *Mem = Old.allocate(Total);
  if (!Mem) {
    // allocateOld carries a never-scavenges contract — callers (bootstrap,
    // kernel construction, the compiler, symbol interning) hold raw oops a
    // moving collection would invalidate — so no recovery rung is sound
    // here. These allocations are small and bounded by the program text,
    // so overshoot the ceiling rather than panic; the pressure ladder
    // refuses ordinary mutator work until usage drops back below it.
    Mem = Old.allocateOverCeiling(Total);
    OvershootCtr.add(Total);
  }
  auto *H = reinterpret_cast<ObjectHeader *>(Mem);
  initHeader(H, Cls, Slots, Format, ByteLen, /*IsOld=*/true);
  if (Format == ObjectFormat::Bytes)
    std::memset(H->bytes(), 0, size_t(Slots) * sizeof(Oop));
  else
    fillWithNil(H);
  return Oop::fromObject(H);
}

Oop ObjectMemory::allocatePointers(Oop Cls, uint32_t Slots) {
  return allocateNew(Cls, Slots, ObjectFormat::Pointers, 0);
}

Oop ObjectMemory::allocateBytes(Oop Cls, uint32_t ByteLen) {
  return allocateNew(Cls, slotsForBytes(ByteLen), ObjectFormat::Bytes,
                     ByteLen);
}

Oop ObjectMemory::allocateContextObject(Oop Cls, uint32_t Slots) {
  assert(Slots > ContextSpSlotIndex && "context too small for its header");
  return allocateNew(Cls, Slots, ObjectFormat::Context, 0);
}

bool ObjectMemory::oldContains(const void *P) { return Old.contains(P); }

Oop ObjectMemory::allocateOldPointers(Oop Cls, uint32_t Slots) {
  return allocateOld(Cls, Slots, ObjectFormat::Pointers, 0);
}

Oop ObjectMemory::allocateOldBytes(Oop Cls, uint32_t ByteLen) {
  return allocateOld(Cls, slotsForBytes(ByteLen), ObjectFormat::Bytes,
                     ByteLen);
}

Oop ObjectMemory::allocateOldContextObject(Oop Cls, uint32_t Slots) {
  assert(Slots > ContextSpSlotIndex && "context too small for its header");
  return allocateOld(Cls, Slots, ObjectFormat::Context, 0);
}

void ObjectMemory::addRootWalker(RootWalker Walker) {
  std::lock_guard<std::mutex> Guard(RootsMutex);
  RootWalkers.push_back(std::move(Walker));
}

void ObjectMemory::addPreScavengeHook(std::function<void()> Hook) {
  std::lock_guard<std::mutex> Guard(RootsMutex);
  PreScavengeHooks.push_back(std::move(Hook));
}

void ObjectMemory::scavengeNow() {
  while (!Sp.requestStopTheWorld()) {
    // Another thread's scavenge ran; ours was explicitly requested, so
    // keep trying until we are the coordinator.
  }
  performScavenge();
  Sp.resume();
}

void ObjectMemory::fullCollect() {
  while (!Sp.requestStopTheWorld()) {
    // Another thread's scavenge ran; a full collection was explicitly
    // requested, so keep trying until we are the coordinator.
  }
  // The scavenge empties eden into the active survivor space, giving the
  // marker a linearly parseable young generation; performFullGC runs in
  // the same pause (AllowFullGc=false avoids triggering it twice).
  performScavenge(/*AllowFullGc=*/false);
  performFullGC();
  Sp.resume();
}

void ObjectMemory::performScavenge(bool AllowFullGc) {
  // Perturbing here widens the gap between winning the rendezvous and the
  // first forwarding store — the window where late pollers would bite.
  chaos::point("scavenge.start");
  TraceSpan Span("scavenge", "gc");
  uint64_t StartNs = Telemetry::nowNs();
  Stopwatch Watch;
  uint64_t EdenUsedNow = Eden.used();

  {
    std::lock_guard<std::mutex> Guard(RootsMutex);
    for (auto &Hook : PreScavengeHooks)
      Hook();
  }
  // Flush every mutator's TLAB: the unconsumed tail becomes a dead hole in
  // eden (never scanned — the scavenger traces from roots only).
  {
    std::lock_guard<std::mutex> Guard(MutatorsMutex);
    for (auto &M : Mutators)
      M->TlabCur = M->TlabEnd = nullptr;
  }

  Scavenger Scav(*this);
  Scav.run();

  double Pause = Watch.seconds();
  PauseHist.record(Telemetry::nowNs() - StartNs);
  ScavengesCtr.add();
  BytesCopiedCtr.add(Scav.bytesCopied());
  BytesTenuredCtr.add(Scav.bytesTenured());
  TenuredBytesCtr.add(Scav.bytesTenured());
  Span.setArg(Scav.bytesCopied());
  {
    std::lock_guard<std::mutex> Guard(StatsMutex);
    ++Stats.Scavenges;
    Stats.LastPauseSec = Pause;
    Stats.TotalPauseSec += Pause;
    if (Pause > Stats.MaxPauseSec)
      Stats.MaxPauseSec = Pause;
    Stats.BytesCopied += Scav.bytesCopied();
    Stats.BytesTenured += Scav.bytesTenured();
    Stats.ObjectsCopied += Scav.objectsCopied();
    Stats.ObjectsTenured += Scav.objectsTenured();
    Stats.EdenBytesAllocated += EdenUsedNow;
  }

  // The tenure-pressure trigger: when tenuring has pushed old space past
  // the armed threshold, reclaim tenured garbage in the same pause (the
  // world is already stopped and eden is empty — exactly the state the
  // full collector wants).
  if (AllowFullGc && Config.FullGcEnabled &&
      Old.used() >= FullGcTrigger.load(std::memory_order_relaxed))
    performFullGC();

  // Scavenge end is the one place every mutator is parked and the heap
  // shape is settled — check the low-space watermark here.
  maybeSignalLowSpace();
  if (Config.VerifyAfterGc) {
    std::string Err;
    if (!verifyHeap(&Err))
      panic("verifyHeap failed after scavenge: " + Err);
  }
}

void ObjectMemory::performFullGC() {
  chaos::point("fullgc.start");
  TraceSpan Span("fullgc", "gc");
  uint64_t StartNs = Telemetry::nowNs();
  Stopwatch Watch;

  FullGC Collector(*this);
  Collector.run();

  double Pause = Watch.seconds();
  FullPauseHist.record(Telemetry::nowNs() - StartNs);
  FullGcsCtr.add();
  FullSweptCtr.add(Collector.sweptBytes());
  Span.setArg(Collector.sweptBytes());
  {
    std::lock_guard<std::mutex> Guard(StatsMutex);
    ++FullStats.Collections;
    FullStats.LastPauseSec = Pause;
    FullStats.TotalPauseSec += Pause;
    if (Pause > FullStats.MaxPauseSec)
      FullStats.MaxPauseSec = Pause;
    FullStats.SweptBytes += Collector.sweptBytes();
    FullStats.LastLiveBytes = Collector.liveBytes();
  }

  // Re-arm the trigger with headroom over the surviving live set so a
  // legitimately growing heap does not collect on every scavenge.
  double Headroom =
      static_cast<double>(Old.used()) * Config.FullGcGrowthFactor;
  size_t Next = Config.FullGcThresholdBytes;
  if (Headroom > static_cast<double>(Next))
    Next = static_cast<size_t>(Headroom);
  FullGcTrigger.store(Next, std::memory_order_relaxed);

  if (Config.VerifyAfterGc) {
    std::string Err;
    if (!verifyHeap(&Err))
      panic("verifyHeap failed after full collection: " + Err);
  }
}

size_t ObjectMemory::headroomBytes() const {
  // Mechanically obtainable bytes: free bytes already carved into old
  // space, plus the open chunk's un-bumped remainder, plus whatever the
  // ceiling still permits old space to grow by. With no ceiling only the
  // first two are counted (growth is host-bounded, not ours).
  size_t Free = Old.freeBytes() + Old.bumpRemaining();
  size_t Cap = Old.ceiling();
  if (Cap == 0)
    return Free;
  size_t Have = Old.capacity();
  size_t Mechanical = Free + (Cap > Have ? Cap - Have : 0);
  // The ceiling also bounds live bytes, so headroom can never exceed the
  // gap between usage and the ceiling — after an evacuation overshoot
  // that gap is zero even while recycled blocks sit on the free lists.
  size_t Used = Old.used();
  size_t LiveRoom = Cap > Used ? Cap - Used : 0;
  return Mechanical < LiveRoom ? Mechanical : LiveRoom;
}

void ObjectMemory::setLowSpaceCallback(std::function<void()> Cb) {
  std::lock_guard<std::mutex> Guard(RootsMutex);
  LowSpaceCallback = std::move(Cb);
}

void ObjectMemory::maybeSignalLowSpace() {
  // Edge-triggered: one signal per downward crossing of the watermark,
  // re-armed once a collection recovers the headroom. Only meaningful
  // under a ceiling — an unbounded heap never runs "low".
  if (Old.ceiling() == 0 || Config.LowSpaceWatermarkBytes == 0)
    return;
  size_t Headroom = headroomBytes();
  if (LowSpaceArmed && Headroom < Config.LowSpaceWatermarkBytes) {
    LowSpaceArmed = false;
    LowSpaceSignalsCtr.add();
    std::function<void()> Cb;
    {
      std::lock_guard<std::mutex> Guard(RootsMutex);
      Cb = LowSpaceCallback;
    }
    // Invoked with the world stopped: the callback must not allocate.
    // Signalling a Smalltalk semaphore is allocation-free.
    if (Cb)
      Cb();
  } else if (!LowSpaceArmed && Headroom >= Config.LowSpaceWatermarkBytes) {
    LowSpaceArmed = true;
  }
}

std::string ObjectMemory::heapSummary() {
  // Panic-path rendering: atomics only. The panicking thread may hold
  // StatsMutex or be mid-GC, so no lock this function takes may be one
  // the hot paths take.
  auto Kb = [](size_t B) { return std::to_string(B / 1024) + " KiB"; };
  std::string Out;
  Out += "eden: " + Kb(Eden.used()) + " / " + Kb(Eden.capacity()) + "\n";
  Out += "survivor[active]: " + Kb(Survivors[ActiveSurvivor].used()) + " / " +
         Kb(Config.SurvivorBytes) + "\n";
  Out += "old: used " + Kb(Old.used()) + ", free " + Kb(Old.freeBytes()) +
         ", capacity " + Kb(Old.capacity());
  if (Old.ceiling())
    Out += ", ceiling " + Kb(Old.ceiling());
  Out += "\n";
  Out += "headroom: " + Kb(headroomBytes()) + "\n";
  Out += "fullgc trigger: " +
         Kb(FullGcTrigger.load(std::memory_order_relaxed)) + "\n";
  Out += "pauses: " + std::to_string(Sp.pauseCount()) + "\n";
  return Out;
}

ScavengeStats ObjectMemory::statsSnapshot() {
  std::lock_guard<std::mutex> Guard(StatsMutex);
  return Stats;
}

FullGcStats ObjectMemory::fullGcStatsSnapshot() {
  std::lock_guard<std::mutex> Guard(StatsMutex);
  return FullStats;
}

bool ObjectMemory::verifyHeap(std::string *Error) {
  // Eden cannot be scanned linearly — abandoned TLAB tails leave
  // uninitialized holes — so verification is a reachability walk from the
  // same roots the scavenger uses.
  char Buf[192];
  auto Fail = [&](const ObjectHeader *H, const char *Msg) {
    if (Error) {
      std::snprintf(Buf, sizeof(Buf), "verifyHeap: object %p: %s",
                    static_cast<const void *>(H), Msg);
      *Error = Buf;
    }
    return false;
  };

  LinearSpace &Active = Survivors[ActiveSurvivor];
  LinearSpace &Inactive = Survivors[1 - ActiveSurvivor];
  auto IsYoung = [&](const ObjectHeader *H) {
    return Eden.contains(H) || Active.contains(H);
  };

  std::vector<Oop> Pending;
  auto AddRoot = [&](Oop V) {
    if (V.isPointer())
      Pending.push_back(V);
  };
  AddRoot(Nil);
  {
    std::lock_guard<std::mutex> Guard(RootsMutex);
    for (auto &Walker : RootWalkers)
      Walker([&](Oop *Cell) { AddRoot(*Cell); });
  }
  {
    std::lock_guard<std::mutex> Guard(MutatorsMutex);
    for (auto &M : Mutators)
      for (Oop *Cell : M->Handles.cells())
        AddRoot(*Cell);
  }
  for (ObjectHeader *H : RemSet.entries()) {
    if (!H->isRemembered())
      return Fail(H, "entry-table member without remembered flag");
    AddRoot(Oop::fromObject(H));
  }

  std::unordered_set<const ObjectHeader *> Visited;
  while (!Pending.empty()) {
    Oop O = Pending.back();
    Pending.pop_back();
    if (O.bits() & 7u)
      return Fail(O.object(), "misaligned object pointer");
    ObjectHeader *H = O.object();
    if (!Visited.insert(H).second)
      continue;

    bool InEden = Eden.contains(H);
    bool InActive = Active.contains(H);
    if (Inactive.contains(H))
      return Fail(H, "lives in the inactive survivor space");
    if (!InEden && !InActive && !Old.contains(H))
      return Fail(H, "lies outside every heap space");
    if (H->isOld() == (InEden || InActive))
      return Fail(H, "old flag disagrees with the space it lives in");
    if (H->isForwarded())
      return Fail(H, "forwarded outside a scavenge");
    if (H->isMarked())
      return Fail(H, "mark bit set outside a full collection");
    if (H->Format != ObjectFormat::Pointers &&
        H->Format != ObjectFormat::Bytes &&
        H->Format != ObjectFormat::Context)
      return Fail(H, "invalid format byte (or a reachable free block)");
    const uint8_t *End =
        reinterpret_cast<const uint8_t *>(H) + H->totalBytes();
    if (InEden && End > Eden.frontier())
      return Fail(H, "body overruns the eden frontier");
    if (InActive && End > Active.frontier())
      return Fail(H, "body overruns the survivor frontier");

    // A null class word is legal (the bootstrap nil); anything else must
    // be an object pointer — the scavenger treats it as a reference.
    Oop Cls = H->classOop();
    if (!Cls.isNull()) {
      if (!Cls.isPointer())
        return Fail(H, "class word is neither null nor an object pointer");
      Pending.push_back(Cls);
    }

    if (H->Format == ObjectFormat::Context &&
        H->SlotCount <= ContextSpSlotIndex)
      return Fail(H, "context too small for its stack-pointer slot");
    uint32_t Live = Scavenger::liveSlots(H);
    if (Live > H->SlotCount)
      return Fail(H, "live slot count exceeds the slot count");
    bool RefsYoung = false;
    const Oop *Slots = H->slots();
    for (uint32_t I = 0; I < Live; ++I) {
      Oop V = Slots[I];
      if (V.isNull() || V.isSmallInt())
        continue;
      if (V.bits() & 7u)
        return Fail(H, "misaligned pointer in a live slot");
      if (IsYoung(V.object()))
        RefsYoung = true;
      Pending.push_back(V);
    }
    if (H->isOld() && RefsYoung && !H->isRemembered())
      return Fail(H, "old object references young but is not remembered");
  }
  // The sweep's output is unreachable by construction, so the walk above
  // never sees it; check the free lists directly.
  return Old.verifyFreeLists(Error);
}
