//===-- objmem/Oop.h - Tagged object pointers -------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Object-oriented pointers (oops). Like Berkeley Smalltalk, this system
/// has **no object table** (paper §2): an oop is either an immediate
/// SmallInteger (low bit set) or a direct pointer to an object body in the
/// heap. Eliminating the table removes a level of indirection from every
/// object reference — and is precisely why garbage collection must stop all
/// interpreters: when objects move there is no table to patch, every
/// reference must be updated.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_OOP_H
#define MST_OBJMEM_OOP_H

#include <cstdint>
#include <functional>

#include "support/Assert.h"

namespace mst {

struct ObjectHeader;

/// A tagged object pointer: SmallInteger immediate or direct object pointer.
///
/// Encoding: bit 0 set => SmallInteger, value in the upper 63 bits (signed).
/// Bit 0 clear => pointer to an ObjectHeader (8-byte aligned). The all-zero
/// oop is the distinguished "null" used only inside the VM (never visible to
/// Smalltalk code; Smalltalk nil is a real heap object).
class Oop {
public:
  /// Constructs the internal null oop.
  constexpr Oop() : Bits(0) {}

  /// \returns the oop encoding the SmallInteger \p Value.
  static Oop fromSmallInt(intptr_t Value) {
    return Oop((static_cast<uintptr_t>(Value) << 1) | 1u);
  }

  /// \returns the oop pointing at heap object \p Object.
  static Oop fromObject(ObjectHeader *Object) {
    assert((reinterpret_cast<uintptr_t>(Object) & 1u) == 0 &&
           "object pointers must be aligned");
    return Oop(reinterpret_cast<uintptr_t>(Object));
  }

  /// \returns an oop from its raw bit pattern (used by the scavenger).
  static Oop fromBits(uintptr_t Bits) { return Oop(Bits); }

  /// \returns true for the internal null oop.
  bool isNull() const { return Bits == 0; }

  /// \returns true when this oop encodes a SmallInteger.
  bool isSmallInt() const { return (Bits & 1u) != 0; }

  /// \returns true when this oop points at a heap object.
  bool isPointer() const { return !isSmallInt() && !isNull(); }

  /// \returns the SmallInteger value. Must be a SmallInteger oop.
  intptr_t smallInt() const {
    assert(isSmallInt() && "not a SmallInteger oop");
    return static_cast<intptr_t>(Bits) >> 1;
  }

  /// \returns the object header. Must be a pointer oop.
  ObjectHeader *object() const {
    assert(isPointer() && "not a pointer oop");
    return reinterpret_cast<ObjectHeader *>(Bits);
  }

  /// \returns the raw bit pattern.
  uintptr_t bits() const { return Bits; }

  friend bool operator==(Oop A, Oop B) { return A.Bits == B.Bits; }
  friend bool operator!=(Oop A, Oop B) { return A.Bits != B.Bits; }

private:
  constexpr explicit Oop(uintptr_t Bits) : Bits(Bits) {}
  uintptr_t Bits;
};

/// The range of values representable as a SmallInteger immediate.
constexpr intptr_t SmallIntMax = INTPTR_MAX >> 1;
constexpr intptr_t SmallIntMin = INTPTR_MIN >> 1;

/// \returns true when \p Value fits in a SmallInteger immediate.
inline bool fitsSmallInt(intptr_t Value) {
  return Value >= SmallIntMin && Value <= SmallIntMax;
}

} // namespace mst

namespace std {
/// Hashing so oops can key unordered containers (identity semantics).
template <> struct hash<mst::Oop> {
  size_t operator()(mst::Oop O) const {
    return std::hash<uintptr_t>()(O.bits());
  }
};
} // namespace std

#endif // MST_OBJMEM_OOP_H
