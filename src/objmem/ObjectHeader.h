//===-- objmem/ObjectHeader.h - Heap object layout --------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The header that precedes every heap object's body. The layout supports
/// the Generation Scavenging collector: a survival-count byte for tenuring,
/// a remembered flag for the entry table, an old-generation bit, and a
/// forwarding encoding that overlays the class word during a scavenge
/// (installable with a compare-and-swap so multiple scavenge workers can
/// race to copy the same object — the paper's §3.1 parallel-scavenge idea).
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_OBJECTHEADER_H
#define MST_OBJMEM_OBJECTHEADER_H

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "objmem/Oop.h"

namespace mst {

/// How an object's body is interpreted.
enum class ObjectFormat : uint8_t {
  /// Every body slot is an oop.
  Pointers,
  /// The body is raw bytes (Strings, Symbols, ByteArrays).
  Bytes,
  /// A context: slots are oops, but only slots [0, stack pointer] are live;
  /// the collector asks the VM layer for the live slot count.
  Context,
  /// A free block in old space (swept garbage awaiting reuse). Never
  /// reachable: the full collector's sweep produces these and
  /// OldSpace::allocate consumes them. The header is reused as free-list
  /// metadata — ClassBits holds the raw next-block pointer (8-aligned, so
  /// bit 0 stays clear and the block never looks forwarded), SlotCount
  /// keeps totalBytes() honest for chunk walks, and ByteLength holds
  /// FreeBlockMagic so the heap verifier can tell a genuine free block
  /// from scribbled memory.
  Free,
};

/// Sentinel stored in a free block's ByteLength field.
constexpr uint32_t FreeBlockMagic = 0xF6EEB10Cu;

/// Word pattern filling a free block's body; the verifier checks it so a
/// stray store into swept memory is caught at the next verifyHeap.
constexpr uint64_t FreeZapWord = 0xDEADBEEFDEADBEEFull;

/// Header flag bits.
enum : uint8_t {
  /// Object lives in the old generation (tenured or allocated old).
  FlagOld = 1u << 0,
  /// Old object recorded in the entry table (may refer to new objects).
  FlagRemembered = 1u << 1,
  /// Context has been captured (by a block or a pointer store) and must not
  /// be recycled onto the free context list.
  FlagEscaped = 1u << 2,
  /// Old object marked live by the current full collection. Set with a
  /// racy-idempotent fetch_or during parallel marking; cleared during the
  /// sweep, so the bit is always zero outside a full collection.
  FlagMarked = 1u << 3,
};

/// The per-object header. The body (slots or bytes) follows immediately.
struct ObjectHeader {
  /// The object's class oop. During a scavenge this word is overlaid with
  /// the forwarding pointer: forwarded iff bit 0 is set (class oops are
  /// always heap pointers, so bit 0 is otherwise clear).
  std::atomic<uintptr_t> ClassBits;

  /// Number of body slots (oop-sized words). For byte objects this counts
  /// the words that cover ByteLength bytes.
  uint32_t SlotCount;

  /// Identity hash, assigned at allocation.
  uint32_t Hash;

  /// Exact byte length for ObjectFormat::Bytes objects; 0 otherwise.
  uint32_t ByteLength;

  ObjectFormat Format;

  /// Flag bits (FlagOld, FlagRemembered, FlagEscaped). Atomic because
  /// different bits are owned by different subsystems (tenuring, the
  /// entry-table lock, context escape) and may be updated from different
  /// threads; relaxed RMWs keep concurrent bit updates from losing each
  /// other. No ordering is implied — each bit's consistency comes from
  /// its own subsystem's synchronization.
  std::atomic<uint8_t> Flags;

  /// Scavenges survived; reaching the tenuring threshold promotes the
  /// object to the old generation.
  uint8_t Age;

  uint8_t Unused = 0;

  /// \returns the object's class.
  Oop classOop() const {
    uintptr_t Bits = ClassBits.load(std::memory_order_relaxed);
    assert((Bits & 1u) == 0 && "reading class of a forwarded object");
    return Oop::fromBits(Bits);
  }

  /// Sets the object's class.
  void setClassOop(Oop Cls) {
    ClassBits.store(Cls.bits(), std::memory_order_relaxed);
  }

  /// \returns true when the header holds a forwarding pointer.
  bool isForwarded() const {
    return (ClassBits.load(std::memory_order_acquire) & 1u) != 0;
  }

  /// \returns the forwarding destination. Must be forwarded.
  ObjectHeader *forwardee() const {
    uintptr_t Bits = ClassBits.load(std::memory_order_acquire);
    assert((Bits & 1u) != 0 && "object is not forwarded");
    return reinterpret_cast<ObjectHeader *>(Bits & ~uintptr_t(1));
  }

  /// Attempts to install \p To as this object's forwarding pointer.
  /// \returns true if this call installed it; false if another scavenge
  /// worker won the race (read forwardee() for the winner's copy).
  bool tryForwardTo(ObjectHeader *To) {
    uintptr_t Expected = ClassBits.load(std::memory_order_acquire);
    if (Expected & 1u)
      return false;
    uintptr_t Desired = reinterpret_cast<uintptr_t>(To) | 1u;
    return ClassBits.compare_exchange_strong(Expected, Desired,
                                             std::memory_order_acq_rel);
  }

  bool isOld() const {
    return (Flags.load(std::memory_order_relaxed) & FlagOld) != 0;
  }
  bool isRemembered() const {
    return (Flags.load(std::memory_order_relaxed) & FlagRemembered) != 0;
  }
  bool isEscaped() const {
    return (Flags.load(std::memory_order_relaxed) & FlagEscaped) != 0;
  }

  void setOld() { Flags.fetch_or(FlagOld, std::memory_order_relaxed); }
  void setRemembered(bool R) {
    if (R)
      Flags.fetch_or(FlagRemembered, std::memory_order_relaxed);
    else
      Flags.fetch_and(uint8_t(~FlagRemembered), std::memory_order_relaxed);
  }
  void setEscaped() { Flags.fetch_or(FlagEscaped, std::memory_order_relaxed); }

  bool isMarked() const {
    return (Flags.load(std::memory_order_relaxed) & FlagMarked) != 0;
  }
  /// Sets the mark bit. \returns true if this call set it (the caller owns
  /// tracing the object); false if another mark worker got there first.
  /// Relaxed is enough: the world is stopped, the bit carries no payload,
  /// and double-tracing an object would be wasteful but not wrong.
  bool tryMark() {
    return (Flags.fetch_or(FlagMarked, std::memory_order_relaxed) &
            FlagMarked) == 0;
  }
  void clearMarked() {
    Flags.fetch_and(uint8_t(~FlagMarked), std::memory_order_relaxed);
  }

  /// \returns a pointer to the body's slot array.
  Oop *slots() { return reinterpret_cast<Oop *>(this + 1); }
  const Oop *slots() const { return reinterpret_cast<const Oop *>(this + 1); }

  /// \returns a pointer to the body's byte array.
  uint8_t *bytes() { return reinterpret_cast<uint8_t *>(this + 1); }
  const uint8_t *bytes() const {
    return reinterpret_cast<const uint8_t *>(this + 1);
  }

  /// \returns the object's total size in bytes, header included.
  size_t totalBytes() const {
    return sizeof(ObjectHeader) + SlotCount * sizeof(Oop);
  }
};

static_assert(sizeof(ObjectHeader) == 24, "header layout changed");
static_assert(alignof(ObjectHeader) == 8, "headers must be 8-byte aligned");

/// \returns the number of body slots needed to hold \p Bytes bytes.
inline uint32_t slotsForBytes(size_t Bytes) {
  return static_cast<uint32_t>((Bytes + sizeof(Oop) - 1) / sizeof(Oop));
}

} // namespace mst

#endif // MST_OBJMEM_OBJECTHEADER_H
