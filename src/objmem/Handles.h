//===-- objmem/Handles.h - GC-safe local references -------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Handles protect oops held in C++ locals across allocation points.
/// Because oops are direct pointers (no object table) and scavenges move
/// objects, any C++ code that allocates while holding intermediate oops
/// (the compiler, the browser, primitives that build structures) must
/// register those oops so the scavenger can update them.
///
/// Each mutator owns a handle stack; Handle pushes the address of its own
/// value cell and pops it on destruction (strict LIFO, enforced).
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_HANDLES_H
#define MST_OBJMEM_HANDLES_H

#include <vector>

#include "objmem/Oop.h"
#include "support/Assert.h"

namespace mst {

/// Per-mutator stack of protected oop cells.
class HandleStack {
public:
  /// Pushes \p Cell; the scavenger will update it in place.
  void push(Oop *Cell) { Cells.push_back(Cell); }

  /// Pops \p Cell, which must be the most recently pushed.
  void pop(Oop *Cell) {
    assert(!Cells.empty() && Cells.back() == Cell &&
           "handles must be destroyed in LIFO order");
    (void)Cell;
    Cells.pop_back();
  }

  /// \returns all live cells. Only safe with the world stopped.
  const std::vector<Oop *> &cells() const { return Cells; }

private:
  std::vector<Oop *> Cells;
};

/// A GC-safe oop reference rooted in the owning mutator's handle stack.
class Handle {
public:
  Handle(HandleStack &Stack, Oop Value) : Stack(Stack), Value(Value) {
    Stack.push(&this->Value);
  }

  ~Handle() { Stack.pop(&Value); }

  Handle(const Handle &) = delete;
  Handle &operator=(const Handle &) = delete;

  /// \returns the (possibly relocated) oop.
  Oop get() const { return Value; }

  /// Replaces the protected oop.
  void set(Oop V) { Value = V; }

  operator Oop() const { return Value; }

private:
  HandleStack &Stack;
  Oop Value;
};

} // namespace mst

#endif // MST_OBJMEM_HANDLES_H
