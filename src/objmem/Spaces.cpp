//===-- objmem/Spaces.cpp - Heap spaces -------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/Spaces.h"

#include <cstdio>

#include "objmem/ObjectHeader.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"

using namespace mst;

static_assert(OldSpace::MinBlockBytes == sizeof(ObjectHeader),
              "free blocks must be at least one header");

void LinearSpace::init(size_t Bytes) {
  assert(!Storage && "space already initialized");
  // Over-align to 16 so every object header lands 8-byte aligned.
  Storage = std::make_unique<uint8_t[]>(Bytes + 16);
  auto Raw = reinterpret_cast<uintptr_t>(Storage.get());
  Base = reinterpret_cast<uint8_t *>((Raw + 15) & ~uintptr_t(15));
  Limit = Base + Bytes;
  Cur.store(Base, std::memory_order_relaxed);
}

namespace {
/// Free-list index for a block of \p Bytes total bytes.
size_t freeListIndex(size_t Bytes) {
  if (Bytes >= OldSpace::OverflowClassBytes)
    return OldSpace::NumExactClasses;
  return (Bytes - OldSpace::MinBlockBytes) / 8;
}
} // namespace

void OldSpace::pushFreeBlockLocked(uint8_t *P, size_t Bytes) {
  assert(Bytes >= MinBlockBytes && Bytes % 8 == 0 && "bad free block size");
  size_t Idx = freeListIndex(Bytes);
  auto *H = reinterpret_cast<ObjectHeader *>(P);
  H->ClassBits.store(reinterpret_cast<uintptr_t>(FreeHeads[Idx]),
                     std::memory_order_relaxed);
  H->SlotCount = static_cast<uint32_t>((Bytes - sizeof(ObjectHeader)) / 8);
  H->Hash = 0;
  H->ByteLength = FreeBlockMagic;
  H->Format = ObjectFormat::Free;
  H->Flags.store(0, std::memory_order_relaxed);
  H->Age = 0;
  H->Unused = 0;
  auto *Body = reinterpret_cast<uint64_t *>(H + 1);
  for (uint32_t I = 0; I < H->SlotCount; ++I)
    Body[I] = FreeZapWord;
  FreeHeads[Idx] = P;
  FreeBytes.fetch_add(Bytes, std::memory_order_relaxed);
}

uint8_t *OldSpace::splitFreeBlock(uint8_t *Block, size_t BlockBytes,
                                  size_t Bytes) {
  FreeBytes.fetch_sub(BlockBytes, std::memory_order_relaxed);
  size_t Remainder = BlockBytes - Bytes;
  assert((Remainder == 0 || Remainder >= MinBlockBytes) &&
         "split would strand an unparseable sliver");
  if (Remainder)
    pushFreeBlockLocked(Block + Bytes, Remainder);
  return Block;
}

uint8_t *OldSpace::takeFromFreeLists(size_t Bytes) {
  size_t Idx = freeListIndex(Bytes);
  if (Idx < NumExactClasses) {
    // Exact fit first.
    if (uint8_t *Head = FreeHeads[Idx]) {
      auto *H = reinterpret_cast<ObjectHeader *>(Head);
      FreeHeads[Idx] = reinterpret_cast<uint8_t *>(
          H->ClassBits.load(std::memory_order_relaxed));
      return splitFreeBlock(Head, Bytes, Bytes);
    }
    // A larger exact class, splitting off the remainder. Classes Idx+1 and
    // Idx+2 are skipped: their remainder (8 or 16 bytes) is smaller than a
    // header and would leave old space unparseable.
    for (size_t J = Idx + 3; J < NumExactClasses; ++J) {
      if (uint8_t *Head = FreeHeads[J]) {
        auto *H = reinterpret_cast<ObjectHeader *>(Head);
        FreeHeads[J] = reinterpret_cast<uint8_t *>(
            H->ClassBits.load(std::memory_order_relaxed));
        return splitFreeBlock(Head, MinBlockBytes + J * 8, Bytes);
      }
    }
  }
  // Overflow list: first fit, same no-sliver rule.
  ObjectHeader *Prev = nullptr;
  for (uint8_t *Block = FreeHeads[NumExactClasses]; Block;) {
    auto *H = reinterpret_cast<ObjectHeader *>(Block);
    size_t BlockBytes = H->totalBytes();
    auto *Next = reinterpret_cast<uint8_t *>(
        H->ClassBits.load(std::memory_order_relaxed));
    if (BlockBytes == Bytes || BlockBytes >= Bytes + MinBlockBytes) {
      if (Prev)
        Prev->ClassBits.store(reinterpret_cast<uintptr_t>(Next),
                              std::memory_order_relaxed);
      else
        FreeHeads[NumExactClasses] = Next;
      return splitFreeBlock(Block, BlockBytes, Bytes);
    }
    Prev = H;
    Block = Next;
  }
  return nullptr;
}

uint8_t *OldSpace::allocate(size_t Bytes) {
  return allocateImpl(Bytes, /*OverCeiling=*/false);
}

uint8_t *OldSpace::allocateOverCeiling(size_t Bytes) {
  return allocateImpl(Bytes, /*OverCeiling=*/true);
}

uint8_t *OldSpace::allocateImpl(size_t Bytes, bool OverCeiling) {
  assert(Bytes % 8 == 0 && "old-space requests must be 8-byte multiples");
  assert(Bytes >= MinBlockBytes && "request smaller than a header");
  SpinLockGuard Guard(Lock);
  // The ceiling bounds live old-space bytes, not just chunk growth:
  // serving a request past it — even from a recycled block — would let a
  // heap the evacuator overshot keep absorbing allocations forever
  // instead of surfacing out-of-memory to the recovery ladder.
  if (!OverCeiling && Ceiling &&
      Used.load(std::memory_order_relaxed) + Bytes > Ceiling)
    return nullptr;
  if (uint8_t *Recycled = takeFromFreeLists(Bytes)) {
    Used.fetch_add(Bytes, std::memory_order_relaxed);
    return Recycled;
  }
  if (Cur == nullptr || Cur + Bytes > Limit) {
    // Growth needs a fresh chunk. Refuse — leaving the current chunk
    // intact — when that would push usable capacity past the ceiling, or
    // when fault injection asks this growth to fail; the caller walks the
    // recovery ladder instead. Over-ceiling callers cannot back out (an
    // evacuation mid-copy) or recover (raw-oop metadata allocation), so
    // for them the ceiling and the injected fault are both waived.
    size_t NewChunk = ChunkBytes > Bytes + 16 ? ChunkBytes : Bytes + 16;
    if (Ceiling && !OverCeiling) {
      size_t Have = Capacity.load(std::memory_order_relaxed);
      size_t Avail = Ceiling > Have ? Ceiling - Have : 0;
      if (Avail < Bytes)
        return nullptr;
      // Shrink the final chunk to exactly what the ceiling still allows.
      if (NewChunk - 16 > Avail)
        NewChunk = Avail + 16;
    }
    if (!OverCeiling && chaos::failPoint("oldspace.grow.fail"))
      return nullptr;
    // Retire the current chunk: donate a parseable tail to the free lists;
    // a sliver smaller than a header is abandoned (the chunk walk stops at
    // Top, so it is never misread as an object).
    if (!Chunks.empty()) {
      size_t Tail = static_cast<size_t>(Limit - Cur);
      if (Tail >= MinBlockBytes) {
        pushFreeBlockLocked(Cur, Tail);
        Chunks.back().Top = Limit;
      } else {
        Chunks.back().Top = Cur;
      }
    }
    Chunk C;
    C.Mem = std::make_unique<uint8_t[]>(NewChunk);
    auto Raw = reinterpret_cast<uintptr_t>(C.Mem.get());
    C.Base = reinterpret_cast<uint8_t *>((Raw + 15) & ~uintptr_t(15));
    C.Bytes = NewChunk - 16;
    Cur = C.Base;
    Limit = C.Base + C.Bytes;
    Capacity.fetch_add(C.Bytes, std::memory_order_relaxed);
    Chunks.push_back(std::move(C));
  }
  uint8_t *Result = Cur;
  Cur += Bytes;
  Used.fetch_add(Bytes, std::memory_order_relaxed);
  BumpRemaining.store(static_cast<size_t>(Limit - Cur),
                      std::memory_order_relaxed);
  return Result;
}

bool OldSpace::contains(const void *P) {
  auto *B = static_cast<const uint8_t *>(P);
  SpinLockGuard Guard(Lock);
  return containsLocked(B);
}

bool OldSpace::containsLocked(const uint8_t *B) const {
  for (size_t I = 0; I < Chunks.size(); ++I) {
    const Chunk &C = Chunks[I];
    // Only the allocated prefix of the current (= last) chunk counts;
    // retired chunks count up to their walkable Top.
    uint8_t *End = I + 1 == Chunks.size() ? Cur : C.Top;
    if (B >= C.Base && B < End)
      return true;
  }
  return false;
}

size_t OldSpace::chunkCount() {
  SpinLockGuard Guard(Lock);
  return Chunks.size();
}

OldSpace::ChunkSpan OldSpace::chunkSpan(size_t I) {
  SpinLockGuard Guard(Lock);
  assert(I < Chunks.size() && "chunk index out of range");
  const Chunk &C = Chunks[I];
  return {C.Base, I + 1 == Chunks.size() ? Cur : C.Top};
}

void OldSpace::sweepBegin() {
  SpinLockGuard Guard(Lock);
  // The sweep rediscovers every surviving free block as it walks the
  // chunks, so the lists restart empty (stale links would otherwise thread
  // through blocks the sweep is about to coalesce).
  for (uint8_t *&Head : FreeHeads)
    Head = nullptr;
  FreeBytes.store(0, std::memory_order_relaxed);
}

void OldSpace::addFreeBlock(uint8_t *P, size_t Bytes) {
  SpinLockGuard Guard(Lock);
  pushFreeBlockLocked(P, Bytes);
}

void OldSpace::noteReclaimed(size_t Bytes) {
  Used.fetch_sub(Bytes, std::memory_order_relaxed);
}

bool OldSpace::verifyFreeLists(std::string *Error) {
  char Buf[160];
  auto Fail = [&](const void *P, const char *Msg) {
    if (Error) {
      std::snprintf(Buf, sizeof(Buf), "verifyFreeLists: block %p: %s", P, Msg);
      *Error = Buf;
    }
    return false;
  };

  SpinLockGuard Guard(Lock);
  size_t Total = 0;
  // Cap the walk so a cyclic list terminates with a diagnostic instead of
  // hanging the verifier.
  size_t MaxBlocks =
      FreeBytes.load(std::memory_order_relaxed) / MinBlockBytes + 1;
  for (size_t Idx = 0; Idx <= NumExactClasses; ++Idx) {
    size_t Walked = 0;
    for (uint8_t *P = FreeHeads[Idx]; P;) {
      if (++Walked > MaxBlocks)
        return Fail(P, "free list is cyclic or longer than freeBytes allows");
      if (reinterpret_cast<uintptr_t>(P) & 7u)
        return Fail(P, "misaligned free block");
      auto *H = reinterpret_cast<ObjectHeader *>(P);
      if (H->Format != ObjectFormat::Free)
        return Fail(P, "free-list block without the Free format");
      if (H->ByteLength != FreeBlockMagic)
        return Fail(P, "free block without the free magic");
      size_t Bytes = H->totalBytes();
      if (Idx < NumExactClasses ? Bytes != MinBlockBytes + Idx * 8
                                : Bytes < OverflowClassBytes)
        return Fail(P, "free block on the wrong size-class list");
      if (!containsLocked(P) || !containsLocked(P + Bytes - 1))
        return Fail(P, "free block lies outside every old-space chunk");
      const auto *Body = reinterpret_cast<const uint64_t *>(H + 1);
      for (uint32_t I = 0; I < H->SlotCount; ++I)
        if (Body[I] != FreeZapWord)
          return Fail(P, "free block body lost its zap fill");
      Total += Bytes;
      P = reinterpret_cast<uint8_t *>(
          H->ClassBits.load(std::memory_order_relaxed));
    }
  }
  if (Total != FreeBytes.load(std::memory_order_relaxed))
    return Fail(nullptr, "free-list totals disagree with freeBytes()");
  return true;
}
