//===-- objmem/Spaces.cpp - Heap spaces -------------------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/Spaces.h"

#include "support/Assert.h"

using namespace mst;

void LinearSpace::init(size_t Bytes) {
  assert(!Storage && "space already initialized");
  // Over-align to 16 so every object header lands 8-byte aligned.
  Storage = std::make_unique<uint8_t[]>(Bytes + 16);
  auto Raw = reinterpret_cast<uintptr_t>(Storage.get());
  Base = reinterpret_cast<uint8_t *>((Raw + 15) & ~uintptr_t(15));
  Limit = Base + Bytes;
  Cur.store(Base, std::memory_order_relaxed);
}

uint8_t *OldSpace::allocate(size_t Bytes) {
  assert(Bytes % 8 == 0 && "old-space requests must be 8-byte multiples");
  SpinLockGuard Guard(Lock);
  if (Cur == nullptr || Cur + Bytes > Limit) {
    size_t NewChunk = ChunkBytes > Bytes + 16 ? ChunkBytes : Bytes + 16;
    Chunk C;
    C.Mem = std::make_unique<uint8_t[]>(NewChunk);
    auto Raw = reinterpret_cast<uintptr_t>(C.Mem.get());
    C.Base = reinterpret_cast<uint8_t *>((Raw + 15) & ~uintptr_t(15));
    C.Bytes = NewChunk - 16;
    Cur = C.Base;
    Limit = C.Base + C.Bytes;
    Chunks.push_back(std::move(C));
  }
  uint8_t *Result = Cur;
  Cur += Bytes;
  Used.fetch_add(Bytes, std::memory_order_relaxed);
  return Result;
}

bool OldSpace::contains(const void *P) {
  auto *B = static_cast<const uint8_t *>(P);
  SpinLockGuard Guard(Lock);
  for (const Chunk &C : Chunks) {
    // Only the allocated prefix of the current chunk counts.
    uint8_t *End = C.Base + C.Bytes == Limit ? Cur : C.Base + C.Bytes;
    if (B >= C.Base && B < End)
      return true;
  }
  return false;
}
