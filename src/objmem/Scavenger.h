//===-- objmem/Scavenger.h - Generation Scavenging --------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Generation Scavenging collector (Ungar 1984): a stop-and-copy
/// scheme over eden plus one survivor space, with tenuring into the
/// non-moving old generation. Because BS/MS use direct pointers with no
/// indirection except during the scavenge itself, the world is stopped for
/// the duration (paper §3.1).
///
/// Supports applying multiple processors to one scavenge — the experiment
/// the paper describes but had not yet performed: workers share a scan
/// stack, bump-allocate survivor space atomically, and race to install
/// forwarding pointers with compare-and-swap.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_SCAVENGER_H
#define MST_OBJMEM_SCAVENGER_H

#include <atomic>
#include <cstdint>
#include <vector>

#include "objmem/ObjectHeader.h"
#include "objmem/Oop.h"
#include "vkernel/SpinLock.h"

namespace mst {

class ObjectMemory;

/// One scavenge operation. Constructed per scavenge by ObjectMemory with
/// the world stopped.
class Scavenger {
public:
  explicit Scavenger(ObjectMemory &OM);

  /// Runs the scavenge. On return all live new objects have been copied
  /// into the destination survivor space or tenured, every root and
  /// old-space reference is updated, and the remembered set is rebuilt.
  void run();

  uint64_t bytesCopied() const { return BytesCopied; }
  uint64_t bytesTenured() const { return BytesTenured; }
  uint64_t objectsCopied() const { return ObjectsCopied; }
  uint64_t objectsTenured() const { return ObjectsTenured; }

  /// \returns the number of body slots the collector must treat as live
  /// oop cells. Shared with ObjectMemory::verifyHeap(), which must agree
  /// with the collector about which fields are traced.
  static uint32_t liveSlots(const ObjectHeader *Obj);

private:
  /// Gathers the addresses of every root oop cell: registered walkers,
  /// mutator handle stacks, and the live fields of remembered old objects.
  void collectRootCells(std::vector<Oop *> &Cells);

  /// Relocates the object referenced by \p Cell (if young) and updates the
  /// cell. Newly made copies are pushed onto the scan stack.
  void processCell(Oop *Cell);

  /// Ensures \p Obj has a copy in to-space or old space.
  /// \returns the copy (or \p Obj's existing forwardee).
  ObjectHeader *copyObject(ObjectHeader *Obj);

  /// Visits the class word and every live field of \p Obj.
  void scanObject(ObjectHeader *Obj);

  /// Worker loop: drain the scan stack until global quiescence.
  void drainLoop(unsigned NumWorkers);

  void pushWork(ObjectHeader *Obj);
  ObjectHeader *popWork();

  /// Rebuilds the remembered set from the prior entries plus every object
  /// tenured during this scavenge.
  void rebuildRememberedSet();

  ObjectMemory &OM;
  /// Destination survivor space for this scavenge.
  class LinearSpace *ToSpace;

  SpinLock WorkLock{true, "scavenge.work"};
  std::vector<ObjectHeader *> ScanStack;
  std::atomic<unsigned> IdleWorkers{0};

  SpinLock PromotedLock{true, "scavenge.promoted"};
  std::vector<ObjectHeader *> Promoted;

  std::atomic<uint64_t> BytesCopied{0};
  std::atomic<uint64_t> BytesTenured{0};
  std::atomic<uint64_t> ObjectsCopied{0};
  std::atomic<uint64_t> ObjectsTenured{0};
};

} // namespace mst

#endif // MST_OBJMEM_SCAVENGER_H
