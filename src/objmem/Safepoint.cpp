//===-- objmem/Safepoint.cpp - Stop-the-world rendezvous --------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/Safepoint.h"

#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "vkernel/Chaos.h"

using namespace mst;

void Safepoint::registerMutator() {
  std::lock_guard<std::mutex> Guard(Mutex);
  ++Mutators;
}

void Safepoint::unregisterMutator() {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(Mutators > 0 && "unregister without register");
  --Mutators;
  // A coordinator may be waiting for this thread; re-evaluate.
  Cv.notify_all();
}

void Safepoint::pollSlow() {
  chaos::point("safepoint.poll");
  std::unique_lock<std::mutex> Lock(Mutex);
  if (!Pending && !InProgress)
    return;
  ++SafeMutators;
  Cv.notify_all();
  Cv.wait(Lock, [this] { return !Pending && !InProgress; });
  --SafeMutators;
  Lock.unlock();
  chaos::point("safepoint.resume");
}

void Safepoint::blockedRegionEnter() {
  chaos::point("safepoint.blocked.enter");
  std::lock_guard<std::mutex> Guard(Mutex);
  ++SafeMutators;
  Cv.notify_all();
}

void Safepoint::blockedRegionLeave() {
  chaos::point("safepoint.blocked.leave");
  std::unique_lock<std::mutex> Lock(Mutex);
  Cv.wait(Lock, [this] { return !Pending && !InProgress; });
  assert(SafeMutators > 0 && "blocked-region bookkeeping broken");
  --SafeMutators;
}

bool Safepoint::requestStopTheWorld() {
  chaos::point("safepoint.request");
  std::unique_lock<std::mutex> Lock(Mutex);
  if (Pending || InProgress) {
    // Someone else is collecting. Park as a safe mutator until their pause
    // finishes, then tell the caller to retry its allocation.
    ++SafeMutators;
    Cv.notify_all();
    Cv.wait(Lock, [this] { return !Pending && !InProgress; });
    --SafeMutators;
    return false;
  }
  TraceSpan Rendezvous("safepoint.rendezvous", "gc");
  uint64_t StartNs = Telemetry::nowNs();
  Pending = true;
  GlobalFlag.store(true, std::memory_order_seq_cst);
  // Count ourselves safe while waiting so other requesters' math works.
  ++SafeMutators;
  Cv.notify_all();
  Cv.wait(Lock, [this] { return SafeMutators >= Mutators; });
  --SafeMutators;
  Pending = false;
  InProgress = true;
  RendezvousHist.record(Telemetry::nowNs() - StartNs);
  Lock.unlock();
  // The window between winning the rendezvous and starting the stopped-
  // world work is where a coordinator-side bug would bite; widen it.
  chaos::point("safepoint.handoff");
  return true;
}

void Safepoint::resume() {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(InProgress && "resume() without a stopped world");
  InProgress = false;
  GlobalFlag.store(false, std::memory_order_seq_cst);
  Pauses.fetch_add(1, std::memory_order_relaxed);
  Cv.notify_all();
}

unsigned Safepoint::mutatorCount() {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Mutators;
}
