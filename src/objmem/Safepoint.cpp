//===-- objmem/Safepoint.cpp - Stop-the-world rendezvous --------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/Safepoint.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "obs/Profiler.h"
#include "obs/TraceBuffer.h"
#include "support/Assert.h"
#include "support/Panic.h"
#include "vkernel/Chaos.h"

using namespace mst;

namespace {
/// Which MutState belongs to the calling thread, per safepoint instance.
/// A vector rather than a single slot because raw Safepoint tests may
/// register one thread with several instances over its lifetime.
thread_local std::vector<std::pair<const Safepoint *, Safepoint::MutState *>>
    TlsStates;

Safepoint::MutState *tlsLookup(const Safepoint *Sp) {
  for (auto &[Owner, State] : TlsStates)
    if (Owner == Sp)
      return State;
  return nullptr;
}
} // namespace

Safepoint::MutState *Safepoint::myStateLocked() { return tlsLookup(this); }

void Safepoint::registerMutator(const std::string &Name) {
  auto State = std::make_unique<MutState>();
  State->Name = Name.empty() ? "mutator" : Name;
  std::lock_guard<std::mutex> Guard(Mutex);
  ++Mutators;
  TlsStates.emplace_back(this, State.get());
  States.push_back(std::move(State));
}

void Safepoint::unregisterMutator() {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(Mutators > 0 && "unregister without register");
  --Mutators;
  if (MutState *Mine = myStateLocked()) {
    for (size_t I = 0; I < States.size(); ++I)
      if (States[I].get() == Mine) {
        States.erase(States.begin() + I);
        break;
      }
    for (size_t I = 0; I < TlsStates.size(); ++I)
      if (TlsStates[I].first == this) {
        TlsStates.erase(TlsStates.begin() + I);
        break;
      }
  }
  // A coordinator may be waiting for this thread; re-evaluate.
  Cv.notify_all();
}

std::string Safepoint::stalledNamesLocked() const {
  std::string Out;
  for (const auto &S : States) {
    if (S->Safe)
      continue;
    if (!Out.empty())
      Out += ", ";
    Out += S->Name;
  }
  return Out.empty() ? "<none registered>" : Out;
}

std::string Safepoint::describeMutators() {
  std::lock_guard<std::mutex> Guard(Mutex);
  std::string Out = "mutators: " + std::to_string(Mutators) +
                    " registered, " + std::to_string(SafeMutators) +
                    " safe; pending=" + std::to_string(Pending) +
                    " in-progress=" + std::to_string(InProgress) +
                    " pauses=" +
                    std::to_string(Pauses.load(std::memory_order_relaxed)) +
                    "\n";
  for (const auto &S : States)
    Out += std::string("  [") + (S->Safe ? "safe  " : "UNSAFE") + "] " +
           S->Name + "\n";
  return Out;
}

void Safepoint::pollSlow() {
  ProfStateScope Prof(ProfState::Safepoint);
  chaos::point("safepoint.poll");
  if (chaos::failPoint("watchdog.stall")) {
    // Deliberately late to the rendezvous: sleep well past the watchdog
    // deadline *before* reporting safe, so a coordinator watching the
    // clock fires and names this thread.
    uint64_t Ms = WatchdogMs.load(std::memory_order_relaxed);
    uint64_t Stall = Ms ? Ms * 3 : 20;
    if (Stall > 1000)
      Stall = 1000;
    std::this_thread::sleep_for(std::chrono::milliseconds(Stall));
  }
  std::unique_lock<std::mutex> Lock(Mutex);
  if (!Pending && !InProgress)
    return;
  MutState *Mine = myStateLocked();
  ++SafeMutators;
  if (Mine)
    Mine->Safe = true;
  Cv.notify_all();
  Cv.wait(Lock, [this] { return !Pending && !InProgress; });
  --SafeMutators;
  if (Mine)
    Mine->Safe = false;
  Lock.unlock();
  chaos::point("safepoint.resume");
}

void Safepoint::blockedRegionEnter() {
  chaos::point("safepoint.blocked.enter");
  std::lock_guard<std::mutex> Guard(Mutex);
  ++SafeMutators;
  if (MutState *Mine = myStateLocked())
    Mine->Safe = true;
  Cv.notify_all();
}

void Safepoint::blockedRegionLeave() {
  // The wait below is for a stop-the-world pause to finish, so the time
  // is a safepoint park, not whatever blocked state the region covered.
  ProfStateScope Prof(ProfState::Safepoint);
  chaos::point("safepoint.blocked.leave");
  std::unique_lock<std::mutex> Lock(Mutex);
  Cv.wait(Lock, [this] { return !Pending && !InProgress; });
  assert(SafeMutators > 0 && "blocked-region bookkeeping broken");
  --SafeMutators;
  if (MutState *Mine = myStateLocked())
    Mine->Safe = false;
}

bool Safepoint::requestStopTheWorld() {
  // Covers both outcomes: parking behind another collector and waiting
  // out our own rendezvous. The collection itself re-tags the state
  // (Scavenger/FullGC install their own scopes).
  ProfStateScope Prof(ProfState::Safepoint);
  chaos::point("safepoint.request");
  std::unique_lock<std::mutex> Lock(Mutex);
  MutState *Mine = myStateLocked();
  if (Pending || InProgress) {
    // Someone else is collecting. Park as a safe mutator until their pause
    // finishes, then tell the caller to retry its allocation.
    ++SafeMutators;
    if (Mine)
      Mine->Safe = true;
    Cv.notify_all();
    Cv.wait(Lock, [this] { return !Pending && !InProgress; });
    --SafeMutators;
    if (Mine)
      Mine->Safe = false;
    return false;
  }
  TraceSpan Rendezvous("safepoint.rendezvous", "gc");
  uint64_t StartNs = Telemetry::nowNs();
  Pending = true;
  GlobalFlag.store(true, std::memory_order_seq_cst);
  // Count ourselves safe while waiting so other requesters' math works.
  ++SafeMutators;
  if (Mine)
    Mine->Safe = true;
  Cv.notify_all();
  uint64_t Ms = WatchdogMs.load(std::memory_order_relaxed);
  if (Ms == 0) {
    Cv.wait(Lock, [this] { return SafeMutators >= Mutators; });
  } else {
    auto Deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
    while (SafeMutators < Mutators) {
      if (Cv.wait_until(Lock, Deadline) != std::cv_status::timeout)
        continue;
      if (SafeMutators >= Mutators)
        break;
      // Rendezvous stalled past the deadline: postmortem dump naming the
      // unresponsive mutators. A handler (test harness) consumes it and
      // the wait continues; unhandled, escalate — a silently hung VM is
      // strictly worse than a crashed one with a dump.
      WatchdogFires.fetch_add(1, std::memory_order_relaxed);
      std::string Stalled = stalledNamesLocked();
      Lock.unlock();
      bool Handled = panicReport(
          "safepoint watchdog: rendezvous stalled past " +
          std::to_string(Ms) + " ms; unresponsive: " + Stalled);
      if (!Handled)
        std::abort();
      Lock.lock();
      Deadline =
          std::chrono::steady_clock::now() + std::chrono::milliseconds(Ms);
    }
  }
  --SafeMutators;
  if (Mine)
    Mine->Safe = false;
  Pending = false;
  InProgress = true;
  RendezvousHist.record(Telemetry::nowNs() - StartNs);
  Lock.unlock();
  // The window between winning the rendezvous and starting the stopped-
  // world work is where a coordinator-side bug would bite; widen it.
  chaos::point("safepoint.handoff");
  return true;
}

void Safepoint::resume() {
  std::lock_guard<std::mutex> Guard(Mutex);
  assert(InProgress && "resume() without a stopped world");
  InProgress = false;
  GlobalFlag.store(false, std::memory_order_seq_cst);
  Pauses.fetch_add(1, std::memory_order_relaxed);
  Cv.notify_all();
}

unsigned Safepoint::mutatorCount() {
  std::lock_guard<std::mutex> Guard(Mutex);
  return Mutators;
}

bool Safepoint::currentThreadRegistered() {
  std::lock_guard<std::mutex> Guard(Mutex);
  return myStateLocked() != nullptr;
}
