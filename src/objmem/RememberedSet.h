//===-- objmem/RememberedSet.h - The entry table ----------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Entry table maintenance, "also called remembering or store checking"
/// (paper §3.1): recording old objects which refer to younger ones, so the
/// young can be scavenged without scanning all of old space. Like BS, the
/// set is an array plus a per-object remembered flag; like MS, one lock on
/// the array also synchronizes the tests on the flag — serialization is
/// appropriate because stores of young pointers into old objects are brief
/// and comparatively infrequent.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_REMEMBEREDSET_H
#define MST_OBJMEM_REMEMBEREDSET_H

#include <cstdint>
#include <vector>

#include "objmem/ObjectHeader.h"
#include "vkernel/SpinLock.h"

namespace mst {

/// The set of old objects that may contain references to new objects.
class RememberedSet {
public:
  /// \param LocksEnabled false for the baseline-BS (no-MP) build.
  explicit RememberedSet(bool LocksEnabled) : Lock(LocksEnabled, "remset") {}

  /// Records \p Old in the entry table if it is not already recorded. The
  /// remembered-flag test runs under the array's lock; callers may (and the
  /// write barrier does) pre-test the flag without the lock as a fast path,
  /// which is safe because the flag only transitions false -> true between
  /// scavenges, and scavenges run with the world stopped.
  void remember(ObjectHeader *Old) {
    SpinLockGuard Guard(Lock);
    if (Old->isRemembered())
      return;
    Old->setRemembered(true);
    Entries.push_back(Old);
  }

  /// \returns the current entries. Only safe with the world stopped.
  const std::vector<ObjectHeader *> &entries() const { return Entries; }

  /// Replaces the entries after a scavenge rebuilt the set. Only safe with
  /// the world stopped; every object in \p NewEntries must have its
  /// remembered flag set, and every dropped object must have it cleared.
  void replaceEntries(std::vector<ObjectHeader *> NewEntries) {
    Entries = std::move(NewEntries);
  }

  /// \returns the number of remembered objects (diagnostic; racy).
  size_t size() {
    SpinLockGuard Guard(Lock);
    return Entries.size();
  }

  /// \returns lock instrumentation for the contention benches.
  SpinLock &lock() { return Lock; }

private:
  SpinLock Lock;
  std::vector<ObjectHeader *> Entries;
};

} // namespace mst

#endif // MST_OBJMEM_REMEMBEREDSET_H
