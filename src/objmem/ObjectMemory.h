//===-- objmem/ObjectMemory.h - Generation-scavenged heap -------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The object memory: a Generation Scavenging heap (Ungar 1984) shared by
/// all interpreter processes, exactly the arrangement MS inherited from BS
/// (paper §2, §3.1). Serialization and replication appear here as
/// first-class policies:
///
///  - **Allocation** is serialized with a spin lock ("little more than
///    incrementing a pointer", brief and comparatively infrequent), or
///    replicated per-interpreter with thread-local allocation buffers —
///    the improvement the paper proposes in §4.
///  - **Garbage collection** is serialized behind a stop-the-world
///    safepoint; optionally several processors are applied to one scavenge.
///  - **Entry table** updates are serialized with one lock on the array
///    that also synchronizes the remembered-flag tests.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_OBJECTMEMORY_H
#define MST_OBJMEM_OBJECTMEMORY_H

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/Histogram.h"
#include "obs/Telemetry.h"

#include "objmem/Handles.h"
#include "objmem/MemoryConfig.h"
#include "objmem/ObjectHeader.h"
#include "objmem/Oop.h"
#include "objmem/RememberedSet.h"
#include "objmem/Safepoint.h"
#include "objmem/Spaces.h"
#include "vkernel/SpinLock.h"

namespace mst {

class Scavenger;

/// Context slot index holding the stack pointer (a SmallInteger, the index
/// of the topmost live slot). The scavenger scans Format::Context objects
/// only up to this bound; the VM layer maintains the convention.
constexpr uint32_t ContextSpSlotIndex = 2;

/// Per-mutator-thread state: allocation buffer and handle stack.
struct MutatorContext {
  unsigned Id = 0;
  std::string Name;
  /// Thread-local allocation buffer (AllocatorKind::Tlab only).
  uint8_t *TlabCur = nullptr;
  uint8_t *TlabEnd = nullptr;
  /// Oop cells protected across allocation points.
  HandleStack Handles;
};

/// Cumulative full-collection statistics (the mark-sweep collector for
/// old space; see FullGC.h).
struct FullGcStats {
  uint64_t Collections = 0;
  double TotalPauseSec = 0.0;
  double LastPauseSec = 0.0;
  double MaxPauseSec = 0.0;
  /// Freshly dead old bytes returned to the free lists.
  uint64_t SweptBytes = 0;
  /// Old bytes surviving the most recent collection.
  uint64_t LastLiveBytes = 0;
};

/// Cumulative scavenger statistics, for the §3.1 "3% of processor time"
/// and r/s scavenge-frequency experiments.
struct ScavengeStats {
  uint64_t Scavenges = 0;
  double TotalPauseSec = 0.0;
  double LastPauseSec = 0.0;
  double MaxPauseSec = 0.0;
  uint64_t BytesCopied = 0;
  uint64_t BytesTenured = 0;
  uint64_t ObjectsCopied = 0;
  uint64_t ObjectsTenured = 0;
  /// Eden bytes consumed over the lifetime of the heap (allocation rate r
  /// integrates this over time).
  uint64_t EdenBytesAllocated = 0;
};

/// The shared object memory.
class ObjectMemory {
public:
  /// A root walker is called with a visitor; it must invoke the visitor on
  /// the address of every oop cell it owns. Called with the world stopped.
  using OopVisitor = std::function<void(Oop *)>;
  using RootWalker = std::function<void(const OopVisitor &)>;

  explicit ObjectMemory(const MemoryConfig &Config);
  ~ObjectMemory();

  ObjectMemory(const ObjectMemory &) = delete;
  ObjectMemory &operator=(const ObjectMemory &) = delete;

  const MemoryConfig &config() const { return Config; }

  /// --- Mutator lifecycle -------------------------------------------------

  /// Registers the calling thread as a mutator; required before any
  /// allocation or heap access from that thread.
  MutatorContext *registerMutator(const std::string &Name);

  /// Unregisters the calling thread. Its handle stack must be empty.
  void unregisterMutator();

  /// \returns the calling thread's mutator context.
  MutatorContext &mutator();

  /// \returns the calling thread's handle stack.
  HandleStack &handles() { return mutator().Handles; }

  /// --- The distinguished nil object --------------------------------------

  /// Sets the oop used to fill fresh pointer objects. Must be an old-space
  /// object (it is never moved). Called once during bootstrap.
  void setNil(Oop NilOop) { Nil = NilOop; }

  Oop nil() const { return Nil; }

  /// --- Allocation ---------------------------------------------------------
  /// New-space allocation may trigger a scavenge: every call is a GC point.
  /// Callers must hold no raw object pointers across these calls unless
  /// protected by handles.
  ///
  /// Under a heap ceiling (MemoryConfig::MaxHeapBytes) allocation walks
  /// the memory-pressure recovery ladder — scavenge, full collection,
  /// bounded old-space growth — and when every rung fails answers the
  /// *null oop*. The VM layer raises that into the requesting Smalltalk
  /// process as OutOfMemoryError; only paths with no process to fail
  /// (bootstrap, mid-scavenge tenuring) escalate to panic().

  /// Allocates a pointers object with \p Slots nil-filled fields.
  /// \returns the object, or null when memory is exhausted.
  Oop allocatePointers(Oop Cls, uint32_t Slots);

  /// Allocates a byte object of exactly \p ByteLen zero-filled bytes.
  /// \returns the object, or null when memory is exhausted.
  Oop allocateBytes(Oop Cls, uint32_t ByteLen);

  /// Allocates a context object (Format::Context) with \p Slots fields.
  /// \returns the object, or null when memory is exhausted.
  Oop allocateContextObject(Oop Cls, uint32_t Slots);

  /// Allocates directly in old space (bootstrap / permanent objects).
  /// Never triggers a scavenge.
  Oop allocateOldPointers(Oop Cls, uint32_t Slots);
  Oop allocateOldBytes(Oop Cls, uint32_t ByteLen);
  /// Old-space context allocation (snapshot loading).
  Oop allocateOldContextObject(Oop Cls, uint32_t Slots);

  /// Raises the identity-hash counter above \p H (snapshot loading keeps
  /// loaded hashes; fresh objects must not collide systematically).
  void ensureHashCounterAbove(uint32_t H) {
    uint32_t Cur = NextHash.load(std::memory_order_relaxed);
    while (Cur <= H &&
           !NextHash.compare_exchange_weak(Cur, H + 1,
                                           std::memory_order_relaxed)) {
    }
  }

  /// --- Field access -------------------------------------------------------

  /// \returns field \p I of \p Obj. No barrier needed on reads.
  ///
  /// Slot accesses go through acquire/release atomics: object bodies are
  /// shared between interpreters with no per-object lock (the paper's MS
  /// never locks bodies — races on slots are Smalltalk-level races,
  /// resolved by Smalltalk-level synchronization or accepted by the
  /// program). The atomic makes the word-sized access untorn, and the
  /// release/acquire pair orders a new object's header initialization
  /// before any use by a thread that observes its oop through a shared
  /// slot — the publication edge a real multiprocessor needs. On x86
  /// both compile to the same mov as a plain access.
  static Oop fetchPointer(Oop Obj, uint32_t I) {
    ObjectHeader *H = Obj.object();
    // Out-of-range fetches indicate VM corruption; diagnose loudly even
    // though the assert aborts right after (release builds keep asserts).
    if (I >= H->SlotCount)
      std::fprintf(stderr,
                   "fetchPointer out of range: index %u, %u slots, "
                   "format %d\n",
                   I, H->SlotCount, static_cast<int>(H->Format));
    assert(I < H->SlotCount && "fetchPointer out of range");
    uintptr_t &Cell = reinterpret_cast<uintptr_t *>(H->slots())[I];
    return Oop::fromBits(
        std::atomic_ref<uintptr_t>(Cell).load(std::memory_order_acquire));
  }

  /// Stores \p V into field \p I of \p Obj with the generational write
  /// barrier; additionally marks stored contexts as escaped so they are
  /// never recycled onto a free context list.
  void storePointer(Oop Obj, uint32_t I, Oop V) {
    if (V.isPointer() && V.object()->Format == ObjectFormat::Context)
      V.object()->setEscaped();
    storePointerNoEscape(Obj, I, V);
  }

  /// Stores with the write barrier but without escape marking. Used for
  /// context linkage (sender/caller fields) where capturing a context is
  /// part of normal activation, not an escape.
  void storePointerNoEscape(Oop Obj, uint32_t I, Oop V) {
    ObjectHeader *H = Obj.object();
    assert(I < H->SlotCount && "storePointer out of range");
    uintptr_t &Cell = reinterpret_cast<uintptr_t *>(H->slots())[I];
    std::atomic_ref<uintptr_t>(Cell).store(V.bits(),
                                           std::memory_order_release);
    writeBarrier(H, V);
  }

  /// The generational write barrier: remembers \p Holder when an old
  /// object gains a reference to a new one.
  void writeBarrier(ObjectHeader *Holder, Oop V) {
    if (Holder->isOld() && V.isPointer() && !V.object()->isOld() &&
        !Holder->isRemembered())
      RemSet.remember(Holder);
  }

  /// --- Roots and scavenge hooks -------------------------------------------

  /// Registers a walker over external root cells (well-known objects, the
  /// scheduler's queues, interpreter state, the symbol table).
  void addRootWalker(RootWalker Walker);

  /// Registers a hook run at the start of every scavenge with the world
  /// stopped (e.g. flushing free context lists, which hold dead objects).
  void addPreScavengeHook(std::function<void()> Hook);

  /// --- Garbage collection -------------------------------------------------

  /// Performs a stop-the-world scavenge now. The caller must be a
  /// registered mutator holding no unprotected heap pointers.
  void scavengeNow();

  /// Performs a stop-the-world full (mark-sweep) collection of old space
  /// now, preceded by a scavenge in the same pause. Same caller contract
  /// as scavengeNow(). Runs even when the automatic trigger is disabled.
  void fullCollect();

  Safepoint &safepoint() { return Sp; }
  RememberedSet &rememberedSet() { return RemSet; }

  /// \returns true when \p P points into an old-space chunk. Profile
  /// resolution uses this to validate sampled method bits before
  /// dereferencing them (takes the old-space allocation lock).
  bool oldContains(const void *P);

  /// --- Memory pressure ----------------------------------------------------

  /// \returns obtainable old-space bytes: recycled free-list bytes plus
  /// whatever the ceiling still allows old space to grow. With no ceiling
  /// the growth term is unbounded, so only the free-list bytes are
  /// reported (the mem.headroom gauge reads this).
  size_t headroomBytes() const;

  /// Installs the low-space notification. Invoked at the end of a
  /// scavenge, on the coordinator thread with the world still stopped,
  /// when headroom first drops below MemoryConfig::LowSpaceWatermarkBytes
  /// (edge-triggered; re-armed when headroom recovers). The callback must
  /// not allocate — the VM layer signals a Smalltalk semaphore, which is
  /// allocation-free.
  void setLowSpaceCallback(std::function<void()> Cb);

  /// --- Debug verification ---------------------------------------------------

  /// Walks every object reachable from the roots (nil, registered root
  /// walkers, mutator handle stacks, remembered old objects) and checks
  /// the heap invariants: each object lies in eden, the active survivor
  /// space, or old space (never the inactive survivor space); its old flag
  /// agrees with where it lives; it is not forwarded; its body stays below
  /// its space's frontier; its class is a valid pointer; live pointer
  /// slots are aligned; and every old object holding a young reference is
  /// remembered. Must run with no concurrent mutation (world stopped or
  /// workload quiesced). \returns true when the heap is consistent; on
  /// failure describes the first violation in \p Error when given.
  bool verifyHeap(std::string *Error = nullptr);

  /// \returns a snapshot of the scavenger statistics.
  ScavengeStats statsSnapshot();

  /// \returns a snapshot of the full-collection statistics.
  FullGcStats fullGcStatsSnapshot();

  /// \returns bytes currently used in eden (includes TLAB slack).
  size_t edenUsed() const { return Eden.used(); }
  size_t edenCapacity() const { return Eden.capacity(); }
  size_t oldSpaceUsed() const { return Old.used(); }
  size_t oldSpaceFree() const { return Old.freeBytes(); }
  size_t oldSpaceCapacity() const { return Old.capacity(); }

  /// \returns instrumentation handle on the allocation lock.
  SpinLock &allocationLock() { return AllocLock; }

  /// \returns the distribution of stop-the-world scavenge pauses (ns).
  const Histogram &pauseHistogram() const { return PauseHist; }

  /// \returns the distribution of full-collection pauses (ns).
  const Histogram &fullPauseHistogram() const { return FullPauseHist; }

private:
  friend class Scavenger;
  friend class FullGC;

  /// Allocates \p TotalBytes in new space, walking the recovery ladder on
  /// exhaustion: bounded scavenging, then diversion into old space (which
  /// itself may run a full collection). Oversized requests — larger than
  /// a quarter of eden, or than eden outright — divert immediately; they
  /// could never be satisfied by scavenging and must not spin. \returns
  /// the block (the caller learns where it landed via \p WentOld), or
  /// nullptr when every rung failed.
  uint8_t *allocateNewRaw(size_t TotalBytes, bool &WentOld);

  /// Old-space allocation walking the ladder's lower rungs: on refusal
  /// (heap ceiling, injected fault) a full collection runs to reclaim
  /// tenured garbage before one retry. The caller must be at a legal GC
  /// point. \returns the block, or nullptr — out of memory.
  uint8_t *allocateOldRescuing(size_t TotalBytes);

  /// \returns whether old-space usage has reached the heap ceiling —
  /// the state left behind when an evacuation had to overshoot it. While
  /// true the ladder skips the scavenge rungs (they could only push
  /// further past) and routes allocations through the rescue rung, whose
  /// full collection brings usage back under the ceiling or surfaces an
  /// orderly out-of-memory.
  bool oldAtCeiling() const {
    return Old.ceiling() != 0 && Old.used() >= Old.ceiling();
  }

  /// The edge-triggered low-space watermark check; end of scavenge, world
  /// stopped.
  void maybeSignalLowSpace();

  /// Bounded heap summary for the panic dump (atomics only — callable
  /// from any fatal path).
  std::string heapSummary();

  Oop allocateNew(Oop Cls, uint32_t Slots, ObjectFormat Format,
                  uint32_t ByteLen);
  Oop allocateOld(Oop Cls, uint32_t Slots, ObjectFormat Format,
                  uint32_t ByteLen);

  void initHeader(ObjectHeader *H, Oop Cls, uint32_t Slots,
                  ObjectFormat Format, uint32_t ByteLen, bool IsOld);
  void fillWithNil(ObjectHeader *H);

  /// Runs the scavenge with the world stopped (caller is coordinator).
  /// When \p AllowFullGc, tenuring that pushes old space past the current
  /// trigger runs a full collection inside the same pause.
  void performScavenge(bool AllowFullGc = true);

  /// Runs a full (mark-sweep) collection of old space with the world
  /// stopped and eden empty (a scavenge must precede it in this pause),
  /// then re-arms the growth-threshold trigger.
  void performFullGC();

  MemoryConfig Config;
  Safepoint Sp;
  RememberedSet RemSet;

  LinearSpace Eden;
  LinearSpace Survivors[2];
  unsigned ActiveSurvivor = 0; // Index of the space holding live survivors.
  OldSpace Old;

  SpinLock AllocLock;
  std::atomic<uint32_t> NextHash{1};

  Oop Nil;

  std::mutex MutatorsMutex;
  std::vector<std::unique_ptr<MutatorContext>> Mutators;

  std::mutex RootsMutex;
  std::vector<RootWalker> RootWalkers;
  std::vector<std::function<void()>> PreScavengeHooks;

  std::mutex StatsMutex;
  ScavengeStats Stats;
  FullGcStats FullStats;

  /// Old-space occupancy (bytes) that triggers the next automatic full
  /// collection; re-armed after every full GC from the survivors' size.
  /// Atomic only so diagnostics may read it racily; updates happen with
  /// the world stopped.
  std::atomic<size_t> FullGcTrigger;

  /// Registry-visible GC telemetry (the StatsMutex-guarded ScavengeStats
  /// above remains the precise per-VM record; these feed the process-wide
  /// report and the bench JSON).
  Histogram PauseHist{"gc.scavenge.pause"};
  Histogram FullPauseHist{"gc.full.pause"};
  Counter ScavengesCtr{"gc.scavenges"};
  Counter BytesCopiedCtr{"gc.bytes.copied"};
  Counter BytesTenuredCtr{"gc.bytes.tenured"};
  /// Total old-space pressure: scavenger tenuring plus oversized
  /// allocations that bypass eden — the same byte stream the full-GC
  /// trigger watches, so the telemetry report and the heuristic agree.
  Counter TenuredBytesCtr{"gc.tenured.bytes"};
  Counter FullGcsCtr{"gc.full.collections"};
  Counter FullSweptCtr{"gc.full.swept.bytes"};
  Gauge EdenUsedGauge{"mem.eden.used", [this] { return edenUsed(); }};
  Gauge OldUsedGauge{"mem.old.used", [this] { return oldSpaceUsed(); }};
  Gauge OldFreeGauge{"mem.old.free", [this] { return oldSpaceFree(); }};

  /// Memory-pressure instrumentation: one counter per recovery-ladder
  /// rung, the low-space signal count, and the live headroom gauge.
  Counter LadderScavengeCtr{"mem.pressure.ladder.scavenge"};
  Counter LadderFullGcCtr{"mem.pressure.ladder.fullgc"};
  Counter LadderGrowCtr{"mem.pressure.ladder.grow"};
  Counter LadderOomCtr{"mem.pressure.ladder.oom"};
  Counter LowSpaceSignalsCtr{"gc.lowspace.signals"};
  /// Bytes the scavenger tenured past the ceiling because both old space
  /// and the survivor space refused mid-evacuation.
  Counter OvershootCtr{"mem.pressure.overshoot.bytes"};
  Gauge HeadroomGauge{"mem.headroom", [this] { return headroomBytes(); }};

  /// Low-space notification; write guarded by RootsMutex, invoked with
  /// the world stopped.
  std::function<void()> LowSpaceCallback;
  /// Edge trigger for the watermark; touched only with the world stopped.
  bool LowSpaceArmed = true;

  /// Panic-dump sections owned by this memory (heap summary + safepoint
  /// mutator table); unregistered in the destructor.
  int HeapPanicSection = -1;
  int SafepointPanicSection = -1;
};

} // namespace mst

#endif // MST_OBJMEM_OBJECTMEMORY_H
