//===-- objmem/Safepoint.h - Stop-the-world rendezvous ----------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The scavenge rendezvous. Since scavenging requires all live new objects
/// to move and no indirection is used except during the scavenge, "the
/// interpreter must suspend all other activity for the duration of the
/// operation" (paper §3.1). And because garbage collection takes long
/// compared to other interpreter activities, spin-locks are not used here;
/// instead all processes are synchronized with a *global flag* plus kernel
/// synchronization.
///
/// Protocol:
///  - Every interpreter process registers as a *mutator*.
///  - Mutators poll the global flag in the bytecode loop and at allocation
///    points. When it is raised they park until the scavenge completes.
///  - A mutator about to block for a long time (e.g. waiting for runnable
///    Smalltalk Processes) brackets the wait in a *blocked region*, during
///    which it counts as parked and must touch no heap object.
///  - The thread whose allocation failed becomes the coordinator: it raises
///    the flag, waits for every mutator to be safe, runs the scavenge, and
///    resumes the world.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_SAFEPOINT_H
#define MST_OBJMEM_SAFEPOINT_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/Histogram.h"

namespace mst {

/// Coordinates stop-the-world pauses between mutator threads.
class Safepoint {
public:
  Safepoint() = default;
  Safepoint(const Safepoint &) = delete;
  Safepoint &operator=(const Safepoint &) = delete;

  /// Registers the calling thread as a mutator. \p Name labels the thread
  /// in watchdog reports and the panic mutator table.
  void registerMutator(const std::string &Name = std::string());

  /// Unregisters the calling thread. The thread must not be inside a
  /// blocked region and must not hold heap references afterwards.
  void unregisterMutator();

  /// \returns true when a stop-the-world pause has been requested and the
  /// caller must call pollSlow(). Hot-path check: one relaxed load.
  bool pollNeeded() const {
    return GlobalFlag.load(std::memory_order_relaxed);
  }

  /// Parks the calling mutator until the pending pause completes. The
  /// caller must have written back any cached heap state first, and must
  /// refresh all cached heap pointers afterwards.
  void pollSlow();

  /// Enters a blocked region: the caller may sleep indefinitely and counts
  /// as safe for stop-the-world purposes.
  void blockedRegionEnter();

  /// Leaves a blocked region, waiting out any pause in progress.
  void blockedRegionLeave();

  /// Requests a stop-the-world pause. Blocks until every other mutator is
  /// safe. \returns true when the caller is now the coordinator and must
  /// call resume() after doing its work with the world stopped; false when
  /// another thread's pause ran while we waited (the caller should retry
  /// whatever failed — e.g. an allocation — before requesting again).
  bool requestStopTheWorld();

  /// Resumes the world after requestStopTheWorld() returned true.
  void resume();

  /// \returns the number of registered mutators (diagnostic).
  unsigned mutatorCount();

  /// \returns whether the calling thread is registered as a mutator with
  /// this safepoint. The emergency-snapshot panic section uses this to
  /// decide whether a stop-the-world request is even legal on the
  /// panicking thread (an unregistered caller would corrupt the
  /// rendezvous count).
  bool currentThreadRegistered();

  /// \returns how many stop-the-world pauses have completed.
  uint64_t pauseCount() const {
    return Pauses.load(std::memory_order_relaxed);
  }

  /// \returns the distribution of rendezvous latencies (ns): the time from
  /// raising the global flag until every mutator reported safe. This is
  /// the part of the pause the paper's global-flag protocol adds on top of
  /// the scavenge work itself.
  const Histogram &rendezvousHistogram() const { return RendezvousHist; }

  /// --- Watchdog -----------------------------------------------------------
  /// A mutator that never reaches a poll (wedged primitive, deadlocked
  /// host lock, runaway native loop) stalls every future rendezvous and
  /// with it the whole VM. The watchdog bounds the coordinator's wait:
  /// past the deadline it emits a panic dump naming the mutators that
  /// have not reported safe. If a panic handler consumed the dump (test
  /// harness), the wait continues and the dump repeats each deadline;
  /// unhandled, the watchdog aborts rather than hang forever.

  /// Sets the rendezvous deadline in milliseconds; 0 disables.
  void setWatchdogMillis(uint64_t Ms) {
    WatchdogMs.store(Ms, std::memory_order_relaxed);
  }

  uint64_t watchdogMillis() const {
    return WatchdogMs.load(std::memory_order_relaxed);
  }

  /// \returns how many times the watchdog has fired.
  uint64_t watchdogFirings() const {
    return WatchdogFires.load(std::memory_order_relaxed);
  }

  /// Renders the mutator table (name + safe/unsafe + rendezvous state)
  /// for the panic dump. Takes the internal mutex; fatal paths never hold
  /// it, so panic sections may call this.
  std::string describeMutators();

  /// Per-mutator bookkeeping, exposed only because the thread-local
  /// registration map in Safepoint.cpp needs the type.
  struct MutState {
    std::string Name;
    bool Safe = false; // guarded by Mutex
  };

private:
  /// The calling thread's state within this safepoint, or nullptr when
  /// the thread is not registered here. Mutex held.
  MutState *myStateLocked();

  /// Comma-joined names of registered mutators not currently safe.
  /// Mutex held.
  std::string stalledNamesLocked() const;

  std::mutex Mutex;
  std::condition_variable Cv;
  std::atomic<bool> GlobalFlag{false};
  bool Pending = false;     // Coordinator elected, gathering mutators.
  bool InProgress = false;  // World stopped, coordinator working.
  unsigned Mutators = 0;
  unsigned SafeMutators = 0;
  std::vector<std::unique_ptr<MutState>> States; // guarded by Mutex
  std::atomic<uint64_t> Pauses{0};
  std::atomic<uint64_t> WatchdogMs{0};
  std::atomic<uint64_t> WatchdogFires{0};
  Histogram RendezvousHist{"gc.safepoint.rendezvous"};
};

/// RAII bracket for a blocked region.
class BlockedRegion {
public:
  explicit BlockedRegion(Safepoint &Sp) : Sp(Sp) { Sp.blockedRegionEnter(); }
  ~BlockedRegion() { Sp.blockedRegionLeave(); }

  BlockedRegion(const BlockedRegion &) = delete;
  BlockedRegion &operator=(const BlockedRegion &) = delete;

private:
  Safepoint &Sp;
};

} // namespace mst

#endif // MST_OBJMEM_SAFEPOINT_H
