//===-- objmem/Scavenger.cpp - Generation Scavenging ------------*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "objmem/Scavenger.h"

#include <cstring>
#include <thread>

#include "objmem/ObjectMemory.h"
#include "obs/Profiler.h"
#include "support/Assert.h"
#include "support/Panic.h"

using namespace mst;

Scavenger::Scavenger(ObjectMemory &OM) : OM(OM) {
  ToSpace = &OM.Survivors[1 - OM.ActiveSurvivor];
}

uint32_t Scavenger::liveSlots(const ObjectHeader *Obj) {
  switch (Obj->Format) {
  case ObjectFormat::Pointers:
    return Obj->SlotCount;
  case ObjectFormat::Bytes:
    return 0;
  case ObjectFormat::Context: {
    Oop Sp = Obj->slots()[ContextSpSlotIndex];
    if (!Sp.isSmallInt())
      return Obj->SlotCount;
    intptr_t Top = Sp.smallInt();
    if (Top < 0)
      return 0;
    uint32_t Live = static_cast<uint32_t>(Top) + 1;
    return Live < Obj->SlotCount ? Live : Obj->SlotCount;
  }
  case ObjectFormat::Free:
    // Free blocks are unreachable; no collector should ask.
    break;
  }
  MST_UNREACHABLE("unknown object format");
}

ObjectHeader *Scavenger::copyObject(ObjectHeader *Obj) {
  assert(!Obj->isOld() && "only new objects are copied");
  if (Obj->isForwarded())
    return Obj->forwardee();

  // Capture the class word before copying; a racing worker could install a
  // forwarding pointer while we memcpy, and the destination must hold the
  // real class.
  uintptr_t ClassBits = Obj->ClassBits.load(std::memory_order_acquire);
  if (ClassBits & 1u)
    return Obj->forwardee();

  size_t Total = Obj->totalBytes();
  uint8_t NewAge = Obj->Age < 255 ? static_cast<uint8_t>(Obj->Age + 1) : 255;
  bool Tenure = NewAge >= OM.Config.TenureAge;

  uint8_t *Dest = nullptr;
  if (!Tenure) {
    Dest = ToSpace->tryBumpAtomic(Total);
    if (!Dest)
      Tenure = true; // Survivor space overflow: tenure early.
  }
  if (Tenure) {
    Dest = OM.Old.allocate(Total);
    if (!Dest) {
      // Old space is at the heap ceiling. The object must still move —
      // eden is about to be reset — so keep it young in the survivor
      // space for another round and let the mutator's recovery ladder
      // deal with the pressure once the world restarts.
      Dest = ToSpace->tryBumpAtomic(Total);
      Tenure = false;
      if (!Dest) {
        // Both refused. Evacuation cannot back out — forwarding pointers
        // are already installed — so overshoot the ceiling rather than
        // wedge: at worst one young generation of live bytes. The ladder
        // refuses mutator allocation while used() sits past the ceiling,
        // so the overshoot drains instead of compounding.
        Dest = OM.Old.allocateOverCeiling(Total);
        Tenure = true;
        OM.OvershootCtr.add(Total);
      }
    }
  }

  auto *Copy = reinterpret_cast<ObjectHeader *>(Dest);
  // The body is immutable while the world is stopped, so a plain memcpy is
  // fine there. The header is rebuilt field by field instead: a rival
  // worker's forwarding CAS may hit the source's class word concurrently,
  // so it must not be read again — the capture from above is used.
  std::memcpy(static_cast<void *>(Copy + 1),
              static_cast<const void *>(Obj + 1),
              Total - sizeof(ObjectHeader));
  Copy->ClassBits.store(ClassBits, std::memory_order_relaxed);
  Copy->SlotCount = Obj->SlotCount;
  Copy->Hash = Obj->Hash;
  Copy->ByteLength = Obj->ByteLength;
  Copy->Format = Obj->Format;
  Copy->Flags.store(
      Obj->Flags.load(std::memory_order_relaxed) & uint8_t(~FlagRemembered),
      std::memory_order_relaxed);
  Copy->Age = Tenure ? 0 : NewAge;
  Copy->Unused = 0;
  if (Tenure)
    Copy->setOld();

  if (!Obj->tryForwardTo(Copy)) {
    // Another worker won the copy race; abandon ours (the bump allocation
    // is wasted, which is harmless and rare).
    return Obj->forwardee();
  }

  if (Tenure) {
    BytesTenured.fetch_add(Total, std::memory_order_relaxed);
    ObjectsTenured.fetch_add(1, std::memory_order_relaxed);
    SpinLockGuard Guard(PromotedLock);
    Promoted.push_back(Copy);
  } else {
    BytesCopied.fetch_add(Total, std::memory_order_relaxed);
    ObjectsCopied.fetch_add(1, std::memory_order_relaxed);
  }
  pushWork(Copy);
  return Copy;
}

void Scavenger::processCell(Oop *Cell) {
  Oop V = *Cell;
  if (!V.isPointer())
    return;
  ObjectHeader *O = V.object();
  if (O->isOld())
    return;
  *Cell = Oop::fromObject(copyObject(O));
}

void Scavenger::scanObject(ObjectHeader *Obj) {
  // The class reference is a root of the object too. Classes are normally
  // old, but nothing forbids a young class.
  {
    Oop Cls = Oop::fromBits(Obj->ClassBits.load(std::memory_order_relaxed));
    if (Cls.isPointer() && !Cls.object()->isOld()) {
      ObjectHeader *Copy = copyObject(Cls.object());
      Obj->ClassBits.store(Oop::fromObject(Copy).bits(),
                           std::memory_order_relaxed);
    }
  }
  uint32_t N = liveSlots(Obj);
  Oop *Slots = Obj->slots();
  for (uint32_t I = 0; I < N; ++I)
    processCell(&Slots[I]);
}

void Scavenger::pushWork(ObjectHeader *Obj) {
  SpinLockGuard Guard(WorkLock);
  ScanStack.push_back(Obj);
}

ObjectHeader *Scavenger::popWork() {
  SpinLockGuard Guard(WorkLock);
  if (ScanStack.empty())
    return nullptr;
  ObjectHeader *Obj = ScanStack.back();
  ScanStack.pop_back();
  return Obj;
}

void Scavenger::drainLoop(unsigned NumWorkers) {
  bool Idle = false;
  for (;;) {
    ObjectHeader *Obj = popWork();
    if (Obj) {
      if (Idle) {
        Idle = false;
        IdleWorkers.fetch_sub(1, std::memory_order_acq_rel);
      }
      scanObject(Obj);
      continue;
    }
    if (!Idle) {
      Idle = true;
      IdleWorkers.fetch_add(1, std::memory_order_acq_rel);
    }
    if (IdleWorkers.load(std::memory_order_acquire) == NumWorkers) {
      // Double-check under the lock: a racing worker may have pushed
      // between our failed pop and the idle-count read.
      if ((Obj = popWork())) {
        Idle = false;
        IdleWorkers.fetch_sub(1, std::memory_order_acq_rel);
        scanObject(Obj);
        continue;
      }
      return;
    }
    std::this_thread::yield();
  }
}

void Scavenger::collectRootCells(std::vector<Oop *> &Cells) {
  auto Visitor = [&Cells](Oop *Cell) { Cells.push_back(Cell); };

  // The distinguished nil (old, never moves, but uniformity is cheap).
  Cells.push_back(&OM.Nil);

  // Registered walkers: well-known objects, symbol table, scheduler,
  // per-interpreter state.
  {
    std::lock_guard<std::mutex> Guard(OM.RootsMutex);
    for (auto &Walker : OM.RootWalkers)
      Walker(Visitor);
  }

  // Mutator handle stacks.
  {
    std::lock_guard<std::mutex> Guard(OM.MutatorsMutex);
    for (auto &M : OM.Mutators)
      for (Oop *Cell : M->Handles.cells())
        Cells.push_back(Cell);
  }

  // Live fields of every remembered old object (the entry table's purpose:
  // scavenge the young without scanning all of old space).
  for (ObjectHeader *Old : OM.RemSet.entries()) {
    uint32_t N = liveSlots(Old);
    Oop *Slots = Old->slots();
    for (uint32_t I = 0; I < N; ++I)
      Cells.push_back(&Slots[I]);
  }
}

void Scavenger::rebuildRememberedSet() {
  std::vector<ObjectHeader *> Candidates = OM.RemSet.entries();
  {
    SpinLockGuard Guard(PromotedLock);
    Candidates.insert(Candidates.end(), Promoted.begin(), Promoted.end());
  }
  std::vector<ObjectHeader *> NewEntries;
  for (ObjectHeader *Old : Candidates) {
    uint32_t N = liveSlots(Old);
    Oop *Slots = Old->slots();
    bool RefsYoung = false;
    for (uint32_t I = 0; I < N && !RefsYoung; ++I) {
      Oop V = Slots[I];
      RefsYoung = V.isPointer() && !V.object()->isOld();
    }
    Old->setRemembered(RefsYoung);
    if (RefsYoung)
      NewEntries.push_back(Old);
  }
  OM.RemSet.replaceEntries(std::move(NewEntries));
}

void Scavenger::run() {
  // The coordinating mutator's wall time is GC, not Smalltalk execution.
  ProfStateScope Prof(ProfState::Scavenge);
  assert(ToSpace->used() == 0 && "to-space must be empty before a scavenge");

  std::vector<Oop *> Roots;
  collectRootCells(Roots);

  unsigned NumWorkers = OM.Config.ScavengeWorkers;
  if (NumWorkers == 0)
    NumWorkers = 1;

  if (NumWorkers == 1) {
    for (Oop *Cell : Roots)
      processCell(Cell);
    drainLoop(1);
  } else {
    // Partition the roots statically; each worker then drains the shared
    // scan stack to quiescence.
    std::vector<std::thread> Workers;
    for (unsigned W = 1; W < NumWorkers; ++W) {
      Workers.emplace_back([this, W, NumWorkers, &Roots] {
        for (size_t I = W; I < Roots.size(); I += NumWorkers)
          processCell(Roots[I]);
        drainLoop(NumWorkers);
      });
    }
    for (size_t I = 0; I < Roots.size(); I += NumWorkers)
      processCell(Roots[I]);
    drainLoop(NumWorkers);
    for (auto &T : Workers)
      T.join();
  }

  rebuildRememberedSet();

  // Flip spaces: the destination survivor space now holds the survivors;
  // eden and the previous survivor space are free.
  OM.Survivors[OM.ActiveSurvivor].reset();
  OM.ActiveSurvivor = 1 - OM.ActiveSurvivor;
  OM.Eden.reset();
}
