//===-- objmem/FullGC.h - Parallel mark-sweep full collector ----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A stop-the-world, parallel mark-sweep collector for old space. BS/MS
/// never reclaimed tenured garbage — the paper's old space only grows —
/// which no long-running system survives, so this is the repo's deliberate
/// departure: the standard next step for per-thread young-generation
/// machinery (cf. Auhagen et al., "Garbage Collection for Multicore NUMA
/// Machines").
///
/// The collector reuses the safepoint rendezvous as its pause and always
/// runs immediately after a scavenge in the same pause: eden is then empty
/// and every live young object sits in the active survivor space, which is
/// linearly parseable. Marking therefore roots from the external root
/// cells (VM globals, symbol table, per-process context chains, handle
/// stacks) plus a linear scan of the survivor space, and the mark stacks
/// only ever hold old objects. The remembered set is deliberately *not* a
/// root — treating it as one would keep dead old objects alive; it is
/// rebuilt during the sweep from surviving old→young pointers.
///
/// Marking fans out over FullGcWorkers threads with per-worker mark stacks
/// and work-stealing; sweeping parallelizes over old-space chunks, threads
/// reclaimed blocks onto OldSpace's per-size-class free lists, and
/// coalesces adjacent dead runs.
///
//===----------------------------------------------------------------------===//

#ifndef MST_OBJMEM_FULLGC_H
#define MST_OBJMEM_FULLGC_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

#include "objmem/ObjectHeader.h"
#include "vkernel/SpinLock.h"

namespace mst {

class ObjectMemory;

/// One full collection of old space. Construct and run() with the world
/// stopped, immediately after a scavenge (eden must be empty).
class FullGC {
public:
  explicit FullGC(ObjectMemory &OM);

  /// Marks live old objects, sweeps the chunks, rebuilds the remembered
  /// set. The caller owns the safepoint.
  void run();

  /// \returns bytes of freshly dead objects returned to the free lists.
  size_t sweptBytes() const {
    return Swept.load(std::memory_order_relaxed);
  }
  /// \returns bytes of old objects that survived the collection.
  size_t liveBytes() const { return Live.load(std::memory_order_relaxed); }
  /// \returns the number of surviving old objects.
  size_t liveObjects() const {
    return LiveObjs.load(std::memory_order_relaxed);
  }

private:
  /// Per-worker marking state. The stack is locked (always-on, even in the
  /// baseline build — these locks belong to the collector, not the paper's
  /// serialization experiment) so thieves can steal from it; the owner
  /// pops from the back, thieves take from the front.
  struct Worker {
    SpinLock StackLock{true, "fullgc.stack"};
    std::vector<ObjectHeader *> Stack;
    /// Remembered-set candidates found by this worker's sweep.
    std::vector<ObjectHeader *> RemsetOut;
  };

  /// Marks \p H if old and unmarked, pushing it on worker \p W's stack.
  void markAndPush(ObjectHeader *H, unsigned W);

  /// Seeds the mark stacks from the root cells and the survivor scan
  /// (coordinator only, before the workers start).
  void seedRoots();

  /// Traces \p Obj's class and live slots, marking old referents onto
  /// worker \p W's stack.
  void traceObject(ObjectHeader *Obj, unsigned W);

  /// Pops work for worker \p W, stealing from a sibling when its own
  /// stack is dry. \returns nullptr when nothing was found anywhere.
  ObjectHeader *popOrSteal(unsigned W);

  /// Drains mark work until global quiescence.
  void markLoop(unsigned W);

  /// Claims and sweeps chunks until none remain.
  void sweepLoop(unsigned W);

  /// Sweeps one chunk span, coalescing dead runs onto the free lists.
  void sweepChunk(uint8_t *Begin, uint8_t *End, Worker &Me);

  ObjectMemory &OM;
  unsigned NumWorkers;
  /// deque: Worker holds a SpinLock and cannot move once constructed.
  std::deque<Worker> Workers;
  std::atomic<unsigned> IdleWorkers{0};
  size_t ChunksToSweep = 0;
  std::atomic<size_t> NextChunk{0};
  std::atomic<size_t> Swept{0};
  std::atomic<size_t> Live{0};
  std::atomic<size_t> LiveObjs{0};
};

} // namespace mst

#endif // MST_OBJMEM_FULLGC_H
