//===-- bench/bench_table2.cpp - Table 2: preliminary performance ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Table 2: Preliminary performance results** — the eight
/// macro benchmarks in four system states:
///
///   Baseline BS on multiprocessor   (no multiprocessor support)
///   MS on multiprocessor            (one idle Process)
///   MS with four idle Processes
///   MS with four busy Processes
///
/// The primary metric is **processor time attributed to the benchmark
/// Process** (thread-CPU across its slices). On the Firefly each Process
/// effectively had its own processor, so the paper's elapsed seconds are
/// processor seconds; on hosts with fewer CPUs than interpreters, wall
/// clock is inflated by OS time-sharing and is reported separately.
///
/// Paper expectations (shape, not absolute numbers):
///  - MS vs baseline: static overhead < 15% worst case.
///  - Four idle: roughly +30% worst case over baseline.
///  - Four busy: up to ~65% worst case, ~40% average over baseline.
///  - Differences under 3% are noise ("should be discounted").
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  double Scale = benchScale(3.0);
  unsigned Repeats = 3;

  std::printf("Table 2: Preliminary performance results\n");
  std::printf("workload scale %.1f, %u interpreters for MS states, host "
              "CPUs %u, min of %u runs\n\n",
              Scale, msInterpreters(),
              std::thread::hardware_concurrency(), Repeats);

  const std::vector<SystemState> States = {
      SystemState::BaselineBS, SystemState::Ms, SystemState::MsFourIdle,
      SystemState::MsFourBusy};

  std::vector<std::vector<TimedRun>> All;
  std::vector<Telemetry::Snapshot> Snaps(States.size());
  for (size_t SI = 0; SI < States.size(); ++SI)
    All.push_back(runMacroSuite(States[SI], Scale, Repeats, &Snaps[SI]));

  auto PrintTable = [&](const char *Title, auto Get) {
    std::printf("%s\n", Title);
    TextTable Table;
    std::vector<std::string> Header = {"State"};
    for (const std::string &N : macroShortNames())
      Header.push_back(N);
    Table.setHeader(Header);
    for (size_t SI = 0; SI < All.size(); ++SI) {
      std::vector<std::string> Row = {stateName(States[SI])};
      for (const TimedRun &R : All[SI]) {
        double T = Get(R);
        Row.push_back(!R.Ok || T < 0 ? "FAIL" : formatDouble(T, 3));
      }
      Table.addRow(Row);
    }
    std::printf("%s\n", Table.render().c_str());
  };

  PrintTable("Processor seconds per benchmark (the paper's metric):",
             [](const TimedRun &R) { return R.CpuSec; });
  PrintTable("Wall-clock seconds (inflated by time-sharing when host "
             "CPUs < interpreters):",
             [](const TimedRun &R) { return R.WallSec; });

  // Overhead summary against the baseline, as the paper discusses it.
  auto Summary = [&](size_t SI, const char *Label) {
    double Worst = 0.0, Sum = 0.0;
    size_t N = 0;
    for (size_t B = 0; B < All[0].size(); ++B) {
      // Skip benchmarks whose baseline is too small to be significant.
      if (!All[0][B].Ok || !All[SI][B].Ok || All[0][B].CpuSec < 0.005)
        continue;
      double Over = All[SI][B].CpuSec / All[0][B].CpuSec - 1.0;
      if (Over > Worst)
        Worst = Over;
      Sum += Over;
      ++N;
    }
    std::printf("%-32s worst case %+6.1f%%   average %+6.1f%%\n", Label,
                Worst * 100.0, N ? Sum / N * 100.0 : 0.0);
  };
  std::printf("Processor-time overhead relative to baseline BS "
              "(paper: <15%% static, ~+30%% idle, 65%%/40%% busy):\n");
  Summary(1, "MS (static cost)");
  Summary(2, "MS + four idle Processes");
  Summary(3, "MS + four busy Processes");
  std::printf("\nNote: differences of less than 3%% are not significant "
              "(paper Table 2 footnote).\n");

  // One sample instrumentation report (paper SS6) from a fresh busy run.
  {
    VirtualMachine VM(configFor(SystemState::MsFourBusy));
    bootBenchImage(VM);
    VM.startInterpreters();
    forkCompetitors(VM, 4, busyProcessSource(), "Competitors");
    runMacroBenchmark(VM, macroBenchmarks()[0], Scale / 4, 600.0);
    terminateCompetitors(VM, "Competitors");
    std::printf("\n%s", VM.statisticsReport().c_str());
    std::printf("\n%s", VM.telemetryReport().c_str());
    benchProfileFold(VM);
    VM.shutdown();
  }

  if (!Flags.JsonOut.empty() &&
      !writeBenchJson(Flags.JsonOut, "table2", Scale, States, All, Snaps))
    std::fprintf(stderr, "failed to write %s\n", Flags.JsonOut.c_str());
  finishBenchFlags(Flags, Snaps.back());
  return 0;
}
