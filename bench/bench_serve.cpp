//===-- bench/bench_serve.cpp - End-to-end serving traffic bench ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer under load: an in-process mst_serve Server (4 shards
/// booted from the prewarmed snapshot) carrying traffic from 1000+
/// concurrent loopback TCP sessions, with one shard killed mid-run to
/// price crash recovery under fire. Reports sustained requests/sec and
/// the serve.latency percentiles, plus the usual full telemetry block.
///
/// A second phase storms one shard with offered load beyond its queue
/// budget while a deliberate `[true] whileTrue.` runaway stalls its VM:
/// gates on requests shed (ERR overloaded), the runaway aborted by its
/// deadline (ERR RequestTimeout, no shard reboot), bounded accepted-
/// request p99, and the victim shard still serving afterwards.
///
/// The whole bench runs with `--journal` semantics (write-ahead request
/// journal on), so phase 1's steady-state req/s prices the once-per-batch
/// journal fsync against the unjournaled baseline. A third phase then
/// crashes shards under load carried by `!session`-bound clients running
/// seq'd increments, and gates on ZERO acknowledged-request loss: every
/// session's counter must equal exactly the number of OK-acknowledged
/// increments after the kill storm — replay and the dedup table, priced
/// and verified under fire.
///
///   bench_serve --json-out=OUT.json --image=prewarmed.image
///
/// Scaled by MST_BENCH_SCALE (sessions and rounds; the session count
/// never drops below 4 per thread). The traffic pattern keeps exactly one
/// request outstanding per session — load concurrency comes from session
/// count, matching an interactive-user fleet rather than a pipelined
/// batch client.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <sys/resource.h>
#include <thread>

#include "BenchSupport.h"
#include "serve/Client.h"
#include "serve/Server.h"

using namespace mst;
using namespace mst::serve;

namespace {

/// The serving fleet needs ~2 fds per session in one process (client +
/// server end of every loopback socket); the default soft cap of 1024
/// would wedge the connect phase.
void raiseFdLimit(rlim_t Want) {
  rlimit R{};
  if (getrlimit(RLIMIT_NOFILE, &R) != 0)
    return;
  if (R.rlim_cur >= Want)
    return;
  R.rlim_cur = std::min(Want, R.rlim_max);
  setrlimit(RLIMIT_NOFILE, &R);
}

struct TrafficTotals {
  std::atomic<uint64_t> Oks{0};
  std::atomic<uint64_t> Errs{0};
  std::atomic<uint64_t> Transport{0}; ///< connection-level failures
};

/// One worker: drives its slice of sessions round-robin, one outstanding
/// request per session (send all, then collect all, per round).
void drive(std::deque<Client> &Mine, int Rounds, TrafficTotals &T) {
  for (int R = 0; R < Rounds; ++R) {
    for (Client &C : Mine)
      if (C.connected() && !C.sendLine("3 + 4 * " + std::to_string(R)))
        C.disconnect();
    for (Client &C : Mine) {
      if (!C.connected()) {
        ++T.Transport;
        continue;
      }
      std::string Line, Tag, Value;
      bool Ok = false;
      if (!C.recvLine(Line, 600.0) ||
          !parseResponseLine(Line, Ok, Tag, Value)) {
        ++T.Transport;
        C.disconnect();
        continue;
      }
      // Crash-window ERRs are part of the measured workload.
      ++(Ok ? T.Oks : T.Errs);
    }
  }
}

double histP(const Telemetry::Snapshot &S, const std::string &Name,
             int Which) {
  for (const auto &H : S.Histograms)
    if (H.Name == Name)
      return Which == 50 ? H.P50 : (Which == 95 ? H.P95 : H.P99);
  return 0.0;
}

// --- Phase 2: overload storm ---------------------------------------------

struct StormResult {
  uint64_t Accepted = 0;  ///< OK responses
  uint64_t Shed = 0;      ///< ERR overloaded (budget/breaker fast-fail)
  uint64_t TimedOut = 0;  ///< ERR RequestTimeout (deadline abort)
  uint64_t Transport = 0; ///< connection-level failures
  std::vector<double> AcceptedMs; ///< arrival latency of OK responses
};

/// Floods one session: pipelines \p M quick evals (optionally preceded by
/// a deliberate runaway with a 400ms deadline), then collects every
/// response, timing OK arrivals. Sheds and deadline ERRs are the point of
/// the storm, not failures.
void stormSession(Client &C, int M, bool Runaway, StormResult &R) {
  auto T0 = std::chrono::steady_clock::now();
  int Expect = M;
  if (Runaway) {
    if (!C.sendLine("@run?deadline=400 [true] whileTrue.")) {
      ++R.Transport;
      return;
    }
    ++Expect;
  }
  for (int I = 0; I < M; ++I)
    if (!C.sendLine("@s" + std::to_string(I) + " 3 + " +
                    std::to_string(I))) {
      ++R.Transport;
      return;
    }
  for (int I = 0; I < Expect; ++I) {
    std::string Line, Tag, Value;
    bool Ok = false;
    if (!C.recvLine(Line, 600.0) ||
        !parseResponseLine(Line, Ok, Tag, Value)) {
      ++R.Transport;
      return;
    }
    if (Ok) {
      ++R.Accepted;
      R.AcceptedMs.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - T0)
              .count());
    } else if (Value.rfind("overloaded", 0) == 0) {
      ++R.Shed;
    } else if (Value.find("RequestTimeout") != std::string::npos) {
      ++R.TimedOut;
    }
  }
}

double pctile(std::vector<double> &V, double P) {
  if (V.empty())
    return 0.0;
  std::sort(V.begin(), V.end());
  size_t I = static_cast<size_t>(P * (V.size() - 1));
  return V[I];
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  double Scale = benchScale(1.0);
  const unsigned Shards = 4;
  const unsigned Threads = 4;
  const size_t Sessions = std::max<size_t>(
      Threads * 4, static_cast<size_t>(1000 * Scale));
  const int Rounds = std::max(4, static_cast<int>(12 * Scale));
  raiseFdLimit(2 * Sessions + 256);

  std::string DataDir;
  {
    char Buf[] = "/tmp/mst-bench-serve-XXXXXX";
    const char *D = mkdtemp(Buf);
    DataDir = D ? D : "/tmp";
  }

  ServerConfig Config;
  Config.Pool.Shards = Shards;
  Config.Pool.BaseImage = Flags.ImagePath;
  Config.Pool.DataDir = DataDir;
  Config.Pool.Vm = VmConfig::multiprocessor(1);
  // Overload-control knobs the phase-2 storm runs against. The queue
  // budget is far above phase 1's ~250 outstanding per shard, so the
  // headline numbers stay comparable across runs; AbortGraceMs only
  // matters if an abort fails to land (escalation is a storm failure).
  Config.QueueBudget = 1024;
  Config.Pool.AbortGraceMs = 2000;
  // Durability on for the whole run: phase 1's headline req/s includes
  // the once-per-batch journal fsync, phase 3 gates on replay + dedup.
  Config.Pool.Journal = true;
  Server S(Config);
  std::string Error;
  if (!S.start(Error)) {
    std::fprintf(stderr, "bench_serve: server start failed: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("bench_serve: %u shards on port %u, %zu sessions x %d "
              "rounds\n",
              Shards, S.port(), Sessions, Rounds);

  // Commit a checkpoint per shard so the mid-run crash restores real
  // state rather than falling back to the base image.
  Client Admin;
  if (!Admin.connect(S.port())) {
    std::fprintf(stderr, "bench_serve: admin connect failed\n");
    return 1;
  }
  Admin.sendLine("!checkpoint");
  for (unsigned I = 0; I < Shards; ++I) {
    std::string Line;
    if (!Admin.recvLine(Line, 600.0)) {
      std::fprintf(stderr, "bench_serve: checkpoint did not answer\n");
      return 1;
    }
  }

  // Connect the fleet: Sessions concurrent sockets, striped over the
  // worker threads (session ids are sequential, so every stripe spans
  // all shards).
  std::vector<std::deque<Client>> PerThread(Threads);
  for (size_t I = 0; I < Sessions; ++I) {
    Client C;
    if (!C.connect(S.port())) {
      std::fprintf(stderr, "bench_serve: connect %zu failed\n", I);
      return 1;
    }
    PerThread[I % Threads].push_back(std::move(C));
  }
  std::printf("bench_serve: %zu sessions connected (active=%llu)\n",
              Sessions,
              static_cast<unsigned long long>(S.activeSessions()));

  TrafficTotals Totals;
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  const int Half = Rounds / 2;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      // First half, then second half, with the shard kill in between —
      // the barrier is per worker, so traffic never fully stops.
      drive(PerThread[W], Half, Totals);
      if (W == 0) {
        bool Ok = false;
        std::string Value;
        Admin.eval("!kill 0", Ok, Value, 600.0);
        std::printf("bench_serve: mid-run kill -> %s\n", Value.c_str());
      }
      drive(PerThread[W], Rounds - Half, Totals);
    });
  for (auto &T : Workers)
    T.join();
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();

  // Recovery must have happened and every shard must be serving again.
  uint64_t Restarts = 0;
  bool AllServing = true;
  for (const auto &H : S.pool().health()) {
    Restarts += H.Restarts;
    AllServing = AllServing && H.State == "serving";
  }
  uint64_t Completed = Totals.Oks.load() + Totals.Errs.load();
  double Rps = Completed / (Elapsed > 0 ? Elapsed : 1e-9);
  Telemetry::Snapshot Snap = Telemetry::snapshot();
  double P50 = histP(Snap, "serve.latency", 50);
  double P95 = histP(Snap, "serve.latency", 95);
  double P99 = histP(Snap, "serve.latency", 99);

  std::printf("bench_serve: %llu responses in %.2fs (%.0f req/s), "
              "errors=%llu, transport=%llu, restarts=%llu, p50=%.2fms "
              "p99=%.2fms\n",
              static_cast<unsigned long long>(Completed), Elapsed, Rps,
              static_cast<unsigned long long>(Totals.Errs.load()),
              static_cast<unsigned long long>(Totals.Transport.load()),
              static_cast<unsigned long long>(Restarts), P50 / 1e6,
              P99 / 1e6);

  bool Pass = Totals.Transport.load() == 0 && Totals.Oks.load() > 0 &&
              Restarts >= 1 && AllServing;
  if (!Pass)
    std::fprintf(stderr, "bench_serve: FAILED (transport=%llu oks=%llu "
                         "restarts=%llu all_serving=%d)\n",
                 static_cast<unsigned long long>(Totals.Transport.load()),
                 static_cast<unsigned long long>(Totals.Oks.load()),
                 static_cast<unsigned long long>(Restarts), AllServing);

  // --- Phase 2: overload storm against one shard -------------------------
  // Offered load deliberately exceeds the shard's queue budget while a
  // runaway request stalls its VM: the budget must shed (ERR overloaded),
  // the deadline machinery must abort the runaway (no reboot), accepted
  // requests must complete with bounded latency, and the victim shard
  // must keep serving.
  const int StormPerSession = 192; // 8 sessions -> 1537 offered vs 1024
  std::deque<Client> Storm;
  std::string TargetShard;
  for (int Probe = 0; Probe < 32 && Storm.size() < 8; ++Probe) {
    Client C;
    if (!C.connect(S.port()))
      break;
    bool Ok = false;
    std::string Id;
    if (!C.eval("Smalltalk at: #ShardId", Ok, Id, 600.0) || !Ok)
      continue;
    if (TargetShard.empty())
      TargetShard = Id;
    if (Id == TargetShard)
      Storm.push_back(std::move(C));
  }
  uint64_t RestartsBefore = 0, ExpiredBefore = 0;
  for (const auto &H : S.pool().health()) {
    RestartsBefore += H.Restarts;
    ExpiredBefore += H.DeadlineExpired;
  }

  std::vector<StormResult> StormResults(Storm.size());
  auto StormStart = std::chrono::steady_clock::now();
  {
    std::vector<std::thread> StormWorkers;
    for (size_t I = 0; I < Storm.size(); ++I)
      StormWorkers.emplace_back([&, I] {
        stormSession(Storm[I], StormPerSession, I == 0, StormResults[I]);
      });
    for (auto &T : StormWorkers)
      T.join();
  }
  double StormWallMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - StormStart)
                           .count();

  StormResult Agg;
  for (StormResult &R : StormResults) {
    Agg.Accepted += R.Accepted;
    Agg.Shed += R.Shed;
    Agg.TimedOut += R.TimedOut;
    Agg.Transport += R.Transport;
    Agg.AcceptedMs.insert(Agg.AcceptedMs.end(), R.AcceptedMs.begin(),
                          R.AcceptedMs.end());
  }
  double AcceptedP50 = pctile(Agg.AcceptedMs, 0.50);
  double AcceptedP99 = pctile(Agg.AcceptedMs, 0.99);

  // The runaway's shard keeps serving, with no reboot (the abort landed
  // inside the VM; escalation would show up as a restart).
  bool ShardServes = false;
  if (!Storm.empty()) {
    bool Ok = false;
    std::string Value;
    ShardServes = Storm.front().eval("6 * 7", Ok, Value, 600.0) && Ok &&
                  Value == "42";
  }
  uint64_t RestartsAfter = 0, ExpiredAfter = 0;
  for (const auto &H : S.pool().health()) {
    RestartsAfter += H.Restarts;
    ExpiredAfter += H.DeadlineExpired;
  }

  bool StormPass = Storm.size() == 8 && Agg.Transport == 0 &&
                   Agg.Shed > 0 && Agg.TimedOut >= 1 &&
                   ExpiredAfter > ExpiredBefore &&
                   RestartsAfter == RestartsBefore && ShardServes &&
                   AcceptedP99 < 15000.0;
  std::printf("bench_serve: storm shard=%s offered=%d accepted=%llu "
              "shed=%llu timed_out=%llu accepted_p99=%.1fms wall=%.0fms "
              "%s\n",
              TargetShard.c_str(),
              static_cast<int>(Storm.size()) * StormPerSession + 1,
              static_cast<unsigned long long>(Agg.Accepted),
              static_cast<unsigned long long>(Agg.Shed),
              static_cast<unsigned long long>(Agg.TimedOut), AcceptedP99,
              StormWallMs, StormPass ? "PASS" : "FAILED");
  if (!StormPass)
    std::fprintf(stderr,
                 "bench_serve: storm FAILED (sessions=%zu transport=%llu "
                 "shed=%llu timed_out=%llu expired_delta=%llu "
                 "restarts_delta=%llu serves=%d p99=%.1fms)\n",
                 Storm.size(),
                 static_cast<unsigned long long>(Agg.Transport),
                 static_cast<unsigned long long>(Agg.Shed),
                 static_cast<unsigned long long>(Agg.TimedOut),
                 static_cast<unsigned long long>(ExpiredAfter -
                                                 ExpiredBefore),
                 static_cast<unsigned long long>(RestartsAfter -
                                                 RestartsBefore),
                 ShardServes, AcceptedP99);
  Pass = Pass && StormPass;

  // --- Phase 3: crash-under-load durability gate -------------------------
  // Bound sessions run seq'd increments on private counters while an
  // admin thread keeps killing shards. Every OK the server hands out is a
  // durability promise; at the end each counter must equal exactly the
  // session's OK-acknowledged increment count. One lost acknowledged
  // request (reads low) or one double-applied replay (reads high) fails
  // the bench.
  const size_t CrashSessions =
      std::max<size_t>(16, static_cast<size_t>(64 * Scale));
  const int CrashIncrements = 6;
  std::atomic<uint64_t> CrashAcked{0}, CrashMismatches{0},
      CrashTransport{0}, CrashDone{0};
  uint64_t CrashRestartsBefore = 0;
  for (const auto &H : S.pool().health())
    CrashRestartsBefore += H.Restarts;
  auto CrashStart = std::chrono::steady_clock::now();
  {
    std::atomic<bool> StopKiller{false};
    std::thread Killer([&] {
      Client K;
      if (!K.connect(S.port()))
        return;
      unsigned Victim = 0;
      while (!StopKiller) {
        bool Ok = false;
        std::string Value;
        if (!K.eval("!kill " + std::to_string(Victim++ % Shards), Ok,
                    Value, 600.0))
          return;
        std::this_thread::sleep_for(std::chrono::milliseconds(150));
      }
    });
    std::vector<std::thread> CrashWorkers;
    for (unsigned W = 0; W < Threads; ++W)
      CrashWorkers.emplace_back([&, W] {
        for (size_t I = W; I < CrashSessions; I += Threads) {
          uint64_t Id = 50000 + I;
          std::string Var = "#D" + std::to_string(Id);
          Client C;
          if (!C.connect(S.port()) || !C.bindSession(Id)) {
            ++CrashTransport;
            continue;
          }
          bool Ok = false;
          std::string Value;
          if (!C.evalRetry("Smalltalk at: " + Var + " put: 0", Ok, Value,
                           600.0, 12, 10)) {
            ++CrashTransport;
            continue;
          }
          if (!Ok)
            continue;
          uint64_t Acked = 0;
          bool Lost = false;
          for (int R = 0; R < CrashIncrements; ++R) {
            if (!C.evalRetry("Smalltalk at: " + Var +
                                 " put: (Smalltalk at: " + Var + ") + 1",
                             Ok, Value, 600.0, 12, 10)) {
              ++CrashTransport;
              Lost = true;
              break;
            }
            if (Ok)
              ++Acked;
          }
          if (Lost)
            continue;
          if (!C.evalRetry("Smalltalk at: " + Var, Ok, Value, 600.0, 12,
                           10)) {
            ++CrashTransport;
            continue;
          }
          if (Ok && Value != std::to_string(Acked))
            ++CrashMismatches;
          CrashAcked += Acked;
          ++CrashDone;
        }
      });
    for (auto &T : CrashWorkers)
      T.join();
    StopKiller = true;
    Killer.join();
  }
  double CrashWallMs = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - CrashStart)
                           .count();
  uint64_t CrashRestartsAfter = 0, Replayed = 0, DedupHits = 0;
  bool CrashAllServing = true;
  for (const auto &H : S.pool().health()) {
    CrashRestartsAfter += H.Restarts;
    Replayed += H.Replayed;
    DedupHits += H.DedupHits;
    CrashAllServing = CrashAllServing && H.State == "serving";
  }
  uint64_t CrashKills = CrashRestartsAfter - CrashRestartsBefore;
  bool CrashPass = CrashMismatches == 0 && CrashTransport == 0 &&
                   CrashDone > 0 && CrashAcked > 0 && CrashKills >= 1 &&
                   Replayed >= 1 && CrashAllServing;
  std::printf("bench_serve: crash-under-load sessions=%llu acked=%llu "
              "kills=%llu replayed=%llu dedup_hits=%llu mismatches=%llu "
              "wall=%.0fms %s\n",
              static_cast<unsigned long long>(CrashDone.load()),
              static_cast<unsigned long long>(CrashAcked.load()),
              static_cast<unsigned long long>(CrashKills),
              static_cast<unsigned long long>(Replayed),
              static_cast<unsigned long long>(DedupHits),
              static_cast<unsigned long long>(CrashMismatches.load()),
              CrashWallMs, CrashPass ? "PASS" : "FAILED");
  if (!CrashPass)
    std::fprintf(stderr,
                 "bench_serve: durability gate FAILED (done=%llu "
                 "acked=%llu mismatches=%llu transport=%llu kills=%llu "
                 "replayed=%llu serving=%d)\n",
                 static_cast<unsigned long long>(CrashDone.load()),
                 static_cast<unsigned long long>(CrashAcked.load()),
                 static_cast<unsigned long long>(CrashMismatches.load()),
                 static_cast<unsigned long long>(CrashTransport.load()),
                 static_cast<unsigned long long>(CrashKills),
                 static_cast<unsigned long long>(Replayed),
                 CrashAllServing);
  Pass = Pass && CrashPass;

  Telemetry::Snapshot Final = Telemetry::snapshot();
  if (!Flags.JsonOut.empty()) {
    std::ofstream Out(Flags.JsonOut);
    Out << "{\n  \"bench\": \"serve\",\n"
        << "  \"scale\": " << Scale << ",\n"
        << "  \"shards\": " << Shards << ",\n"
        << "  \"sessions\": " << Sessions << ",\n"
        << "  \"rounds\": " << Rounds << ",\n"
        << "  \"responses\": " << Completed << ",\n"
        << "  \"ok\": " << Totals.Oks.load() << ",\n"
        << "  \"errors\": " << Totals.Errs.load() << ",\n"
        << "  \"elapsed_sec\": " << Elapsed << ",\n"
        << "  \"requests_per_sec\": " << Rps << ",\n"
        << "  \"latency_p50_ns\": " << P50 << ",\n"
        << "  \"latency_p95_ns\": " << P95 << ",\n"
        << "  \"latency_p99_ns\": " << P99 << ",\n"
        << "  \"shard_restarts\": " << Restarts << ",\n"
        << "  \"all_shards_serving\": " << (AllServing ? "true" : "false")
        << ",\n  \"storm\": {\n"
        << "    \"sessions\": " << Storm.size() << ",\n"
        << "    \"offered\": "
        << static_cast<int>(Storm.size()) * StormPerSession + 1 << ",\n"
        << "    \"accepted\": " << Agg.Accepted << ",\n"
        << "    \"shed\": " << Agg.Shed << ",\n"
        << "    \"timed_out\": " << Agg.TimedOut << ",\n"
        << "    \"accepted_p50_ms\": " << AcceptedP50 << ",\n"
        << "    \"accepted_p99_ms\": " << AcceptedP99 << ",\n"
        << "    \"wall_ms\": " << StormWallMs << ",\n"
        << "    \"restarts_during_storm\": "
        << (RestartsAfter - RestartsBefore) << ",\n"
        << "    \"pass\": " << (StormPass ? "true" : "false") << "\n"
        << "  },\n  \"phase3\": {\n"
        << "    \"sessions\": " << CrashDone.load() << ",\n"
        << "    \"acked\": " << CrashAcked.load() << ",\n"
        << "    \"mismatches\": " << CrashMismatches.load() << ",\n"
        << "    \"kills\": " << CrashKills << ",\n"
        << "    \"replayed\": " << Replayed << ",\n"
        << "    \"dedup_hits\": " << DedupHits << ",\n"
        << "    \"wall_ms\": " << CrashWallMs << ",\n"
        << "    \"pass\": " << (CrashPass ? "true" : "false") << "\n"
        << "  },\n  \"telemetry\": " << Telemetry::toJson(Final)
        << "\n}\n";
    std::printf("results written to %s\n", Flags.JsonOut.c_str());
  }

  // Orderly drain (checkpoints every shard) before teardown.
  for (auto &PT : PerThread)
    for (auto &C : PT)
      C.disconnect();
  for (auto &C : Storm)
    C.disconnect();
  Admin.disconnect();
  S.stop();
  finishBenchFlags(Flags, Final);
  return Pass ? 0 : 1;
}
