//===-- bench/bench_serve.cpp - End-to-end serving traffic bench ----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The serving layer under load: an in-process mst_serve Server (4 shards
/// booted from the prewarmed snapshot) carrying traffic from 1000+
/// concurrent loopback TCP sessions, with one shard killed mid-run to
/// price crash recovery under fire. Reports sustained requests/sec and
/// the serve.latency percentiles, plus the usual full telemetry block.
///
///   bench_serve --json-out=OUT.json --image=prewarmed.image
///
/// Scaled by MST_BENCH_SCALE (sessions and rounds; the session count
/// never drops below 4 per thread). The traffic pattern keeps exactly one
/// request outstanding per session — load concurrency comes from session
/// count, matching an interactive-user fleet rather than a pipelined
/// batch client.
///
//===----------------------------------------------------------------------===//

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <sys/resource.h>
#include <thread>

#include "BenchSupport.h"
#include "serve/Client.h"
#include "serve/Server.h"

using namespace mst;
using namespace mst::serve;

namespace {

/// The serving fleet needs ~2 fds per session in one process (client +
/// server end of every loopback socket); the default soft cap of 1024
/// would wedge the connect phase.
void raiseFdLimit(rlim_t Want) {
  rlimit R{};
  if (getrlimit(RLIMIT_NOFILE, &R) != 0)
    return;
  if (R.rlim_cur >= Want)
    return;
  R.rlim_cur = std::min(Want, R.rlim_max);
  setrlimit(RLIMIT_NOFILE, &R);
}

struct TrafficTotals {
  std::atomic<uint64_t> Oks{0};
  std::atomic<uint64_t> Errs{0};
  std::atomic<uint64_t> Transport{0}; ///< connection-level failures
};

/// One worker: drives its slice of sessions round-robin, one outstanding
/// request per session (send all, then collect all, per round).
void drive(std::deque<Client> &Mine, int Rounds, TrafficTotals &T) {
  for (int R = 0; R < Rounds; ++R) {
    for (Client &C : Mine)
      if (C.connected() && !C.sendLine("3 + 4 * " + std::to_string(R)))
        C.disconnect();
    for (Client &C : Mine) {
      if (!C.connected()) {
        ++T.Transport;
        continue;
      }
      std::string Line, Tag, Value;
      bool Ok = false;
      if (!C.recvLine(Line, 600.0) ||
          !parseResponseLine(Line, Ok, Tag, Value)) {
        ++T.Transport;
        C.disconnect();
        continue;
      }
      // Crash-window ERRs are part of the measured workload.
      ++(Ok ? T.Oks : T.Errs);
    }
  }
}

double histP(const Telemetry::Snapshot &S, const std::string &Name,
             int Which) {
  for (const auto &H : S.Histograms)
    if (H.Name == Name)
      return Which == 50 ? H.P50 : (Which == 95 ? H.P95 : H.P99);
  return 0.0;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  double Scale = benchScale(1.0);
  const unsigned Shards = 4;
  const unsigned Threads = 4;
  const size_t Sessions = std::max<size_t>(
      Threads * 4, static_cast<size_t>(1000 * Scale));
  const int Rounds = std::max(4, static_cast<int>(12 * Scale));
  raiseFdLimit(2 * Sessions + 256);

  std::string DataDir;
  {
    char Buf[] = "/tmp/mst-bench-serve-XXXXXX";
    const char *D = mkdtemp(Buf);
    DataDir = D ? D : "/tmp";
  }

  ServerConfig Config;
  Config.Pool.Shards = Shards;
  Config.Pool.BaseImage = Flags.ImagePath;
  Config.Pool.DataDir = DataDir;
  Config.Pool.Vm = VmConfig::multiprocessor(1);
  Server S(Config);
  std::string Error;
  if (!S.start(Error)) {
    std::fprintf(stderr, "bench_serve: server start failed: %s\n",
                 Error.c_str());
    return 1;
  }
  std::printf("bench_serve: %u shards on port %u, %zu sessions x %d "
              "rounds\n",
              Shards, S.port(), Sessions, Rounds);

  // Commit a checkpoint per shard so the mid-run crash restores real
  // state rather than falling back to the base image.
  Client Admin;
  if (!Admin.connect(S.port())) {
    std::fprintf(stderr, "bench_serve: admin connect failed\n");
    return 1;
  }
  Admin.sendLine("!checkpoint");
  for (unsigned I = 0; I < Shards; ++I) {
    std::string Line;
    if (!Admin.recvLine(Line, 600.0)) {
      std::fprintf(stderr, "bench_serve: checkpoint did not answer\n");
      return 1;
    }
  }

  // Connect the fleet: Sessions concurrent sockets, striped over the
  // worker threads (session ids are sequential, so every stripe spans
  // all shards).
  std::vector<std::deque<Client>> PerThread(Threads);
  for (size_t I = 0; I < Sessions; ++I) {
    Client C;
    if (!C.connect(S.port())) {
      std::fprintf(stderr, "bench_serve: connect %zu failed\n", I);
      return 1;
    }
    PerThread[I % Threads].push_back(std::move(C));
  }
  std::printf("bench_serve: %zu sessions connected (active=%llu)\n",
              Sessions,
              static_cast<unsigned long long>(S.activeSessions()));

  TrafficTotals Totals;
  auto Start = std::chrono::steady_clock::now();
  std::vector<std::thread> Workers;
  const int Half = Rounds / 2;
  for (unsigned W = 0; W < Threads; ++W)
    Workers.emplace_back([&, W] {
      // First half, then second half, with the shard kill in between —
      // the barrier is per worker, so traffic never fully stops.
      drive(PerThread[W], Half, Totals);
      if (W == 0) {
        bool Ok = false;
        std::string Value;
        Admin.eval("!kill 0", Ok, Value, 600.0);
        std::printf("bench_serve: mid-run kill -> %s\n", Value.c_str());
      }
      drive(PerThread[W], Rounds - Half, Totals);
    });
  for (auto &T : Workers)
    T.join();
  double Elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    Start)
          .count();

  // Recovery must have happened and every shard must be serving again.
  uint64_t Restarts = 0;
  bool AllServing = true;
  for (const auto &H : S.pool().health()) {
    Restarts += H.Restarts;
    AllServing = AllServing && H.State == "serving";
  }
  uint64_t Completed = Totals.Oks.load() + Totals.Errs.load();
  double Rps = Completed / (Elapsed > 0 ? Elapsed : 1e-9);
  Telemetry::Snapshot Snap = Telemetry::snapshot();
  double P50 = histP(Snap, "serve.latency", 50);
  double P95 = histP(Snap, "serve.latency", 95);
  double P99 = histP(Snap, "serve.latency", 99);

  std::printf("bench_serve: %llu responses in %.2fs (%.0f req/s), "
              "errors=%llu, transport=%llu, restarts=%llu, p50=%.2fms "
              "p99=%.2fms\n",
              static_cast<unsigned long long>(Completed), Elapsed, Rps,
              static_cast<unsigned long long>(Totals.Errs.load()),
              static_cast<unsigned long long>(Totals.Transport.load()),
              static_cast<unsigned long long>(Restarts), P50 / 1e6,
              P99 / 1e6);

  bool Pass = Totals.Transport.load() == 0 && Totals.Oks.load() > 0 &&
              Restarts >= 1 && AllServing;
  if (!Pass)
    std::fprintf(stderr, "bench_serve: FAILED (transport=%llu oks=%llu "
                         "restarts=%llu all_serving=%d)\n",
                 static_cast<unsigned long long>(Totals.Transport.load()),
                 static_cast<unsigned long long>(Totals.Oks.load()),
                 static_cast<unsigned long long>(Restarts), AllServing);

  if (!Flags.JsonOut.empty()) {
    std::ofstream Out(Flags.JsonOut);
    Out << "{\n  \"bench\": \"serve\",\n"
        << "  \"scale\": " << Scale << ",\n"
        << "  \"shards\": " << Shards << ",\n"
        << "  \"sessions\": " << Sessions << ",\n"
        << "  \"rounds\": " << Rounds << ",\n"
        << "  \"responses\": " << Completed << ",\n"
        << "  \"ok\": " << Totals.Oks.load() << ",\n"
        << "  \"errors\": " << Totals.Errs.load() << ",\n"
        << "  \"elapsed_sec\": " << Elapsed << ",\n"
        << "  \"requests_per_sec\": " << Rps << ",\n"
        << "  \"latency_p50_ns\": " << P50 << ",\n"
        << "  \"latency_p95_ns\": " << P95 << ",\n"
        << "  \"latency_p99_ns\": " << P99 << ",\n"
        << "  \"shard_restarts\": " << Restarts << ",\n"
        << "  \"all_shards_serving\": " << (AllServing ? "true" : "false")
        << ",\n  \"telemetry\": " << Telemetry::toJson(Snap) << "\n}\n";
    std::printf("results written to %s\n", Flags.JsonOut.c_str());
  }

  // Orderly drain (checkpoints every shard) before teardown.
  for (auto &PT : PerThread)
    for (auto &C : PT)
      C.disconnect();
  Admin.disconnect();
  S.stop();
  finishBenchFlags(Flags, Snap);
  return Pass ? 0 : 1;
}
