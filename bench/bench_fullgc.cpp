//===-- bench/bench_fullgc.cpp - Full-collection pause benchmarks ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two experiments on the parallel mark-sweep collector:
///
/// 1. Micro: pause time vs. marking/sweeping worker count over a heap
///    with a substantial live old graph plus batches of old garbage.
///    Expected shape: pause falls as workers are added (the mark fans
///    out over the work-stealing stacks, the sweep over chunks), with
///    diminishing returns past the host's CPU count.
///
/// 2. Macro: the Table 2 suite under tenuring pressure (small eden,
///    early tenuring, a low full-GC threshold), full GC on vs. off.
///    With the collector on, old space stays bounded and the run pays
///    for it in `gc.full.pause`; with it off, tenured garbage
///    accumulates for the life of the run.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

#include "objmem/ObjectMemory.h"

using namespace mst;

namespace {

/// One row of the worker-count sweep.
struct MicroRow {
  unsigned Workers;
  uint64_t Collections;
  double AvgPauseMs;
  double MaxPauseMs;
  uint64_t LiveBytes;
  uint64_t SweptBytes;
};

/// Builds a live old graph of \p LiveObjs linked 8-slot objects, then
/// runs \p Rounds explicit collections, re-littering old space with
/// \p GarbageObjs dead objects before each. Only the collector's own
/// pause shows up: no interpreters, no competing mutators.
MicroRow measureMicro(unsigned Workers, int LiveObjs, int GarbageObjs,
                      int Rounds) {
  MemoryConfig MC;
  MC.EdenBytes = 1u << 20;
  MC.SurvivorBytes = 512u << 10;
  MC.OldChunkBytes = 4u << 20;
  MC.FullGcEnabled = false; // collections are explicit: exactly Rounds
  MC.FullGcWorkers = Workers;
  ObjectMemory OM(MC);
  OM.registerMutator("bench");
  Oop Nil = OM.allocateOldPointers(Oop(), 0);
  OM.setNil(Nil);
  Oop Cls = OM.allocateOldPointers(Nil, 0);

  std::vector<Oop> Live(static_cast<size_t>(LiveObjs));
  for (size_t I = 0; I < Live.size(); ++I) {
    Live[I] = OM.allocateOldPointers(Cls, 8);
    if (I) // a long chain: marking must actually chase pointers
      OM.storePointer(Live[I], 0, Live[I - 1]);
  }
  OM.addRootWalker([&Live](const ObjectMemory::OopVisitor &V) {
    for (Oop &R : Live)
      V(&R);
  });

  for (int R = 0; R < Rounds; ++R) {
    for (int I = 0; I < GarbageObjs; ++I)
      OM.allocateOldPointers(Cls, 8);
    OM.fullCollect();
  }

  FullGcStats F = OM.fullGcStatsSnapshot();
  OM.unregisterMutator();
  return MicroRow{Workers, F.Collections,
                  F.Collections ? F.TotalPauseSec /
                                      static_cast<double>(F.Collections) *
                                      1000.0
                                : 0.0,
                  F.MaxPauseSec * 1000.0, F.LastLiveBytes, F.SweptBytes};
}

/// One macro run: the Table 2 suite with the memory manager squeezed so
/// the workloads tenure constantly, with the full collector on or off.
struct MacroRun {
  std::vector<TimedRun> Times;
  Telemetry::Snapshot Snap;
  FullGcStats Gc;
  size_t OldUsed = 0;
};

MacroRun measureMacro(bool FullGcOn, double Scale) {
  VmConfig C = VmConfig::multiprocessor(msInterpreters());
  C.Memory.EdenBytes = 512u << 10;
  C.Memory.SurvivorBytes = 256u << 10;
  C.Memory.TenureAge = 1; // heavy tenure pressure: survivors go old fast
  C.Memory.FullGcEnabled = FullGcOn;
  // The bootstrapped image itself lives in a few hundred KB of old space;
  // a 1M trigger means the tenured churn from the workloads fires the
  // collector repeatedly rather than never.
  C.Memory.FullGcThresholdBytes = 1u << 20;
  VirtualMachine VM(C);
  bootBenchImage(VM);
  VM.startInterpreters();

  // The Table 2 workloads themselves tenure little; the pressure comes
  // from a competitor that keeps refilling a rolling window of arrays.
  // With TenureAge 1 every window entry that survives a scavenge goes
  // old, and its eviction strands it there as tenured garbage — the
  // population only the full collector can reclaim.
  forkCompetitors(VM,
                  1,
                  "| keep | keep := Array new: 256. [true] whileTrue: "
                  "[1 to: 256 do: [:i | keep at: i put: "
                  "(Array new: 16)]]",
                  "TenurePressure");

  MacroRun Out;
  for (const MacroBenchmark &B : macroBenchmarks()) {
    TimedRun Run = runMacroBenchmark(VM, B, Scale, 600.0);
    if (!Run.Ok) {
      std::fprintf(stderr, "benchmark '%s' failed (fullgc %s)\n",
                   B.Name.c_str(), FullGcOn ? "on" : "off");
      for (const std::string &E : VM.errors())
        std::fprintf(stderr, "  error: %s\n", E.c_str());
    }
    Out.Times.push_back(Run);
  }
  terminateCompetitors(VM, "TenurePressure");
  Out.Snap = Telemetry::snapshot();
  Out.Gc = VM.memory().fullGcStatsSnapshot();
  Out.OldUsed = VM.memory().oldSpaceUsed();
  benchProfileFold(VM);
  VM.shutdown();
  return Out;
}

bool writeJson(const std::string &Path, double Scale,
               const std::vector<MicroRow> &Micro,
               const MacroRun &On, const MacroRun &Off) {
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  if (!Os)
    return false;
  Os << "{\"bench\":\"fullgc\",\"scale\":" << Scale << ",\"micro\":[";
  for (size_t I = 0; I < Micro.size(); ++I) {
    const MicroRow &R = Micro[I];
    if (I)
      Os << ',';
    Os << "{\"workers\":" << R.Workers
       << ",\"collections\":" << R.Collections
       << ",\"avg_pause_ms\":" << R.AvgPauseMs
       << ",\"max_pause_ms\":" << R.MaxPauseMs
       << ",\"live_bytes\":" << R.LiveBytes
       << ",\"swept_bytes\":" << R.SweptBytes << "}";
  }
  Os << "],\"macro\":[";
  const auto Names = macroShortNames();
  auto EmitMacro = [&Os, &Names](const char *Mode, const MacroRun &M) {
    Os << "{\"fullgc\":\"" << Mode << "\",\"collections\":"
       << M.Gc.Collections << ",\"total_pause_sec\":" << M.Gc.TotalPauseSec
       << ",\"old_used_bytes\":" << M.OldUsed << ",\"results\":[";
    for (size_t B = 0; B < M.Times.size(); ++B) {
      const TimedRun &R = M.Times[B];
      if (B)
        Os << ',';
      Os << "{\"bench\":\"" << (B < Names.size() ? Names[B] : "?")
         << "\",\"ok\":" << (R.Ok ? "true" : "false")
         << ",\"cpu_sec\":" << R.CpuSec << ",\"wall_sec\":" << R.WallSec
         << "}";
    }
    Os << "],\"telemetry\":" << Telemetry::toJson(M.Snap) << "}";
  };
  EmitMacro("on", On);
  Os << ',';
  EmitMacro("off", Off);
  Os << "]";
  if (!benchProfile().empty())
    Os << ",\"profile\":" << benchProfile().toJson();
  Os << "}";
  return static_cast<bool>(Os);
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  double Scale = benchScale(1.0);

  std::printf("Full collection: parallel mark-sweep of old space\n\n");

  // --- 1. pause vs. worker count --------------------------------------
  int LiveObjs = static_cast<int>(40000 * Scale);
  int GarbageObjs = static_cast<int>(80000 * Scale);
  const int Rounds = 5;
  std::printf("Worker sweep: %d live objects (linked), %d dead per round, "
              "%d collections\n",
              LiveObjs, GarbageObjs, Rounds);
  TextTable T;
  T.setHeader({"workers", "collections", "avg pause (ms)", "max pause (ms)",
               "live bytes", "swept bytes"});
  std::vector<MicroRow> Micro;
  double Baseline = -1.0;
  for (unsigned W : {1u, 2u, 4u}) {
    MicroRow R = measureMicro(W, LiveObjs, GarbageObjs, Rounds);
    if (W == 1)
      Baseline = R.AvgPauseMs;
    Micro.push_back(R);
    T.addRow({std::to_string(R.Workers), std::to_string(R.Collections),
              formatDouble(R.AvgPauseMs, 3), formatDouble(R.MaxPauseMs, 3),
              std::to_string(R.LiveBytes), std::to_string(R.SweptBytes)});
  }
  std::printf("%s", T.render().c_str());
  if (Baseline > 0 && Micro.back().AvgPauseMs > 0)
    std::printf("Speedup with %u workers: %.2fx (host has %u CPUs)\n",
                Micro.back().Workers, Baseline / Micro.back().AvgPauseMs,
                std::thread::hardware_concurrency());

  // --- 2. Table 2 suite under tenuring pressure -----------------------
  std::printf("\nMacro suite under tenuring pressure (512K eden, "
              "TenureAge 1, 1M trigger):\n\n");
  MacroRun On = measureMacro(true, Scale);
  MacroRun Off = measureMacro(false, Scale);

  TextTable M;
  M.setHeader({"benchmark", "fullgc on (s)", "fullgc off (s)"});
  const auto Names = macroShortNames();
  for (size_t B = 0; B < Names.size(); ++B)
    M.addRow({Names[B],
              B < On.Times.size() && On.Times[B].Ok
                  ? formatDouble(On.Times[B].CpuSec, 3)
                  : "fail",
              B < Off.Times.size() && Off.Times[B].Ok
                  ? formatDouble(Off.Times[B].CpuSec, 3)
                  : "fail"});
  std::printf("%s", M.render().c_str());
  std::printf("fullgc on:  %llu collections, %.3f ms total pause, "
              "old used %zu B at end\n",
              static_cast<unsigned long long>(On.Gc.Collections),
              On.Gc.TotalPauseSec * 1000.0, On.OldUsed);
  std::printf("fullgc off: old used %zu B at end (garbage never "
              "reclaimed)\n",
              Off.OldUsed);
  for (const auto &H : On.Snap.Histograms)
    if (H.Name == "gc.full.pause")
      std::printf("gc.full.pause: n=%llu p50=%.1fus p95=%.1fus p99=%.1fus "
                  "max=%.1fus\n",
                  static_cast<unsigned long long>(H.Count), H.P50 / 1e3,
                  H.P95 / 1e3, H.P99 / 1e3, H.Max / 1e3);

  if (!Flags.JsonOut.empty()) {
    if (!writeJson(Flags.JsonOut, Scale, Micro, On, Off))
      std::fprintf(stderr, "failed to write %s\n", Flags.JsonOut.c_str());
    else
      std::printf("results written to %s\n", Flags.JsonOut.c_str());
  }
  finishBenchFlags(Flags, On.Snap);
  return 0;
}
