//===-- bench/bench_parallel_scavenge.cpp - §3.1/§6 parallel scavenge -----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experiment the paper describes but had not performed (§3.1):
/// "Applying multiple processors to the scavenging operation should
/// yield a total overhead of no more than 3%; we haven't yet performed
/// this experiment."
///
/// Sweep: scavenge workers 1..k over a workload with a substantial live
/// survivor set (parallel copying only pays off when there is work to
/// split). Expected shape: total pause time falls as workers are added,
/// with diminishing returns.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

namespace {

struct Row {
  unsigned Workers;
  uint64_t Scavenges;
  double TotalPauseSec;
  double AvgPauseMs;
  uint64_t BytesCopied;
};

Row measure(unsigned Workers, int N) {
  VmConfig C = VmConfig::multiprocessor(1);
  C.Memory.EdenBytes = 2u << 20;
  C.Memory.SurvivorBytes = 2u << 20;
  C.Memory.TenureAge = 14; // keep survivors young: real copy work
  C.Memory.ScavengeWorkers = Workers;
  VirtualMachine VM(C);
  bootstrapImage(VM);
  VM.startInterpreters();

  unsigned Sig = VM.createHostSignal();
  // A large rolling window of live data: every scavenge copies ~4000
  // arrays of 32 slots.
  Oop P = VM.forkDoIt(
      "| keep | keep := Array new: 4000. 1 to: " + std::to_string(N) +
          " do: [:i | keep at: i \\\\ 4000 + 1 put: (Array new: 32)]. "
          "nil hostSignal: " + std::to_string(Sig),
      5, "live-churn");
  if (P.isNull() || !VM.waitHostSignal(Sig, 1, 600.0)) {
    benchProfileFold(VM);
    VM.shutdown();
    return Row{Workers, 0, -1.0, 0.0, 0};
  }
  ScavengeStats S = VM.memory().statsSnapshot();
  benchProfileFold(VM);
  VM.shutdown();
  return Row{Workers, S.Scavenges, S.TotalPauseSec,
             S.Scavenges ? S.TotalPauseSec /
                               static_cast<double>(S.Scavenges) * 1000.0
                         : 0.0,
             S.BytesCopied + S.BytesTenured};
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  int N = static_cast<int>(300000 * benchScale(1.0));
  std::printf("Parallel scavenging: workers applied to one scavenge "
              "(paper §3.1/§6, the unperformed experiment)\n\n");

  TextTable T;
  T.setHeader({"workers", "scavenges", "total pause (s)",
               "avg pause (ms)", "bytes copied"});
  // Scavenge workers are GC threads, independent of the interpreter
  // count; sweep to 4 even on small hosts (speedup needs real CPUs).
  unsigned MaxW = 4;
  double Baseline = -1.0;
  std::vector<Row> Rows;
  for (unsigned W = 1; W <= MaxW; ++W) {
    Row R = measure(W, N);
    if (W == 1)
      Baseline = R.TotalPauseSec;
    Rows.push_back(R);
    T.addRow({std::to_string(R.Workers), std::to_string(R.Scavenges),
              formatDouble(R.TotalPauseSec, 4),
              formatDouble(R.AvgPauseMs, 3),
              std::to_string(R.BytesCopied)});
  }
  std::printf("%s\n", T.render().c_str());
  if (Baseline > 0 && Rows.size() > 1 &&
      Rows.back().TotalPauseSec > 0) {
    std::printf("Speedup with %u workers: %.2fx\n", Rows.back().Workers,
                Baseline / Rows.back().TotalPauseSec);
  }
  std::printf("Expected: pause time falls with added workers on hosts "
              "with that many CPUs (this host has %u); on smaller hosts "
              "the workers time-share and only the mechanism is "
              "demonstrated.\n",
              std::thread::hardware_concurrency());
  finishBenchFlags(Flags, Telemetry::snapshot());
  return 0;
}
