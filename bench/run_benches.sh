#!/usr/bin/env bash
# Runs the Table 2 / Figure 2 macro benchmark suites and emits versioned
# machine-readable results (BENCH_<name>_<git-rev>.json), each including
# the telemetry snapshot (lock contention, cache hit rates, scavenge pause
# percentiles) for every system state.
#
# Usage: bench/run_benches.sh [build-dir] [out-dir]
#   build-dir  where the bench binaries live (default: build)
#   out-dir    where to put the JSON files   (default: bench/results)
# Environment: MST_BENCH_SCALE scales the workload (default per binary).

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench/results}"
REV="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
STAMP="$(date +%Y%m%d-%H%M%S)"

mkdir -p "$OUT_DIR"

for NAME in prewarm table2 figure2 fullgc; do
  BIN="$BUILD_DIR/bench/bench_$NAME"
  if [ ! -x "$BIN" ]; then
    echo "missing $BIN — build first (cmake --build $BUILD_DIR -j)" >&2
    exit 1
  fi
done

# Bootstrap + macro-workload compilation once; every suite then boots each
# system state from the prewarmed snapshot, and the per-state image load
# time lands in the img.load.millis histogram of each BENCH_*.json
# telemetry block.
IMAGE="$OUT_DIR/prewarmed_${REV}.image"
echo "=== bench_prewarm -> $IMAGE ==="
"$BUILD_DIR/bench/bench_prewarm" "$IMAGE"

for NAME in table2 figure2 fullgc; do
  BIN="$BUILD_DIR/bench/bench_$NAME"
  OUT="$OUT_DIR/BENCH_${NAME}_${REV}_${STAMP}.json"
  echo "=== bench_$NAME -> $OUT ==="
  "$BIN" --json-out="$OUT" --image="$IMAGE"
done

echo "done. results in $OUT_DIR/"
