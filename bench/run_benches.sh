#!/usr/bin/env bash
# Runs the Table 2 / Figure 2 macro benchmark suites and emits versioned
# machine-readable results (BENCH_<name>_<git-rev>.json), each including
# the telemetry snapshot (lock contention, cache hit rates, scavenge pause
# percentiles) for every system state, plus the sampling profiler's
# collapsed-stack output (PROFILE_<name>_*.folded — feed to flamegraph.pl).
#
# Usage: bench/run_benches.sh [build-dir] [out-dir]
#   build-dir  where the bench binaries live (default: build)
#   out-dir    where to put the JSON files   (default: bench/results)
# Environment:
#   MST_BENCH_SCALE      scales the workload (default per binary)
#   MST_BENCH_NO_PROFILE set non-empty to skip the profiler flags

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench/results}"
REV="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
STAMP="$(date +%Y%m%d-%H%M%S)"

mkdir -p "$OUT_DIR"

fail() { echo "run_benches: $*" >&2; exit 1; }

for NAME in prewarm table2 figure2 fullgc serve; do
  BIN="$BUILD_DIR/bench/bench_$NAME"
  [ -e "$BIN" ] || fail "missing $BIN — build first (cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j)"
  [ -x "$BIN" ] || fail "$BIN exists but is not executable"
done

# A result file must exist, be non-empty, and parse as JSON (when a JSON
# parser is on the host) — a suite that silently wrote nothing or died
# mid-write must fail the run, not version a corrupt artifact.
check_json() {
  local F="$1"
  [ -s "$F" ] || fail "$F is missing or empty"
  if command -v python3 >/dev/null 2>&1; then
    python3 -m json.tool "$F" >/dev/null 2>&1 || fail "$F is not valid JSON"
  fi
}

# Bootstrap + macro-workload compilation once; every suite then boots each
# system state from the prewarmed snapshot, and the per-state image load
# time lands in the img.load.millis histogram of each BENCH_*.json
# telemetry block.
IMAGE="$OUT_DIR/prewarmed_${REV}.image"
echo "=== bench_prewarm -> $IMAGE ==="
"$BUILD_DIR/bench/bench_prewarm" "$IMAGE" || fail "bench_prewarm exited $?"
[ -s "$IMAGE" ] || fail "prewarmed image $IMAGE is missing or empty"

for NAME in table2 figure2 fullgc; do
  BIN="$BUILD_DIR/bench/bench_$NAME"
  OUT="$OUT_DIR/BENCH_${NAME}_${REV}_${STAMP}.json"
  FOLDED="$OUT_DIR/PROFILE_${NAME}_${REV}_${STAMP}.folded"
  PROFILE_FLAGS=()
  [ -n "${MST_BENCH_NO_PROFILE:-}" ] || \
    PROFILE_FLAGS=(--profile "--profile-folded=$FOLDED")
  echo "=== bench_$NAME -> $OUT ==="
  "$BIN" --json-out="$OUT" --image="$IMAGE" "${PROFILE_FLAGS[@]}" \
    || fail "bench_$NAME exited $?"
  check_json "$OUT"
  if [ -z "${MST_BENCH_NO_PROFILE:-}" ]; then
    [ -s "$FOLDED" ] || fail "bench_$NAME produced no folded profile at $FOLDED"
  fi
done

# End-to-end serving traffic: an in-process shard pool under 1000+
# loopback sessions with a mid-run shard kill. No profiler flags — the
# interesting numbers are requests/sec and the serve.latency percentiles,
# and the bench gates on recovery (restarts >= 1, every shard serving).
OUT="$OUT_DIR/BENCH_serve_${REV}_${STAMP}.json"
echo "=== bench_serve -> $OUT ==="
"$BUILD_DIR/bench/bench_serve" --json-out="$OUT" --image="$IMAGE" \
  || fail "bench_serve exited $?"
check_json "$OUT"

echo "done. results in $OUT_DIR/"
