//===-- bench/BenchSupport.h - Shared bench harness helpers -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: the four system states of
/// Table 2, repetition/measurement plumbing, and output formatting.
///
//===----------------------------------------------------------------------===//

#ifndef MST_BENCH_BENCHSUPPORT_H
#define MST_BENCH_BENCHSUPPORT_H

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "image/Bootstrap.h"
#include "image/MacroBenchmarks.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "vm/VirtualMachine.h"

namespace mst {

/// The number of interpreter processes used for the MS states. The
/// Firefly ran five; we use min(host CPUs, 5) but always at least two,
/// so interpretation is genuinely replicated even on a uniprocessor host
/// while avoiding heavy thread oversubscription (which would charge OS
/// context-switch noise to the benchmark's processor-time attribution).
inline unsigned msInterpreters() {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 4;
  unsigned K = Hw < 5 ? Hw : 5;
  return K < 2 ? 2 : K;
}

/// \returns a scale factor from the MST_BENCH_SCALE environment variable
/// (default \p Dflt). Larger = longer, steadier measurements.
inline double benchScale(double Dflt) {
  if (const char *S = std::getenv("MST_BENCH_SCALE"))
    return std::atof(S);
  return Dflt;
}

/// The four system states of Table 2.
enum class SystemState {
  BaselineBS,  ///< uniprocessor interpreter, no multiprocessor support
  Ms,          ///< MS with one idle Process
  MsFourIdle,  ///< MS with four idle Processes
  MsFourBusy,  ///< MS with four busy Processes
};

inline const char *stateName(SystemState S) {
  switch (S) {
  case SystemState::BaselineBS:
    return "Baseline BS on multiprocessor";
  case SystemState::Ms:
    return "MS on multiprocessor";
  case SystemState::MsFourIdle:
    return "MS with four idle Processes";
  case SystemState::MsFourBusy:
    return "MS with four busy Processes";
  }
  return "?";
}

/// Builds the VM configuration for \p S.
inline VmConfig configFor(SystemState S) {
  if (S == SystemState::BaselineBS)
    return VmConfig::baselineBS();
  return VmConfig::multiprocessor(msInterpreters());
}

/// Runs all eight macro benchmarks in system state \p S.
/// \returns one TimedRun per benchmark (Table 2 column order), keeping
/// the minimum-CPU repetition.
inline std::vector<TimedRun> runMacroSuite(SystemState S, double Scale,
                                           unsigned Repeats = 1) {
  VirtualMachine VM(configFor(S));
  bootstrapImage(VM);
  setupMacroWorkload(VM);
  VM.startInterpreters();

  // Competition per the paper: MS always carries one idle Process (its
  // "uniprocessor mode"); the contended states carry four idle or busy.
  switch (S) {
  case SystemState::BaselineBS:
    break;
  case SystemState::Ms:
    forkCompetitors(VM, 1, idleProcessSource(), "Competitors");
    break;
  case SystemState::MsFourIdle:
    forkCompetitors(VM, 4, idleProcessSource(), "Competitors");
    break;
  case SystemState::MsFourBusy:
    forkCompetitors(VM, 4, busyProcessSource(), "Competitors");
    break;
  }

  std::vector<TimedRun> Times;
  for (const MacroBenchmark &B : macroBenchmarks()) {
    TimedRun Best;
    for (unsigned R = 0; R < Repeats; ++R) {
      TimedRun Run = runMacroBenchmark(VM, B, Scale, 600.0);
      if (!Run.Ok) {
        std::fprintf(stderr, "benchmark '%s' failed in state '%s'\n",
                     B.Name.c_str(), stateName(S));
        for (const std::string &E : VM.errors())
          std::fprintf(stderr, "  error: %s\n", E.c_str());
        Best = Run;
        break;
      }
      // Keep the least-disturbed (minimum processor time) repetition.
      if (!Best.Ok || Run.CpuSec < Best.CpuSec)
        Best = Run;
    }
    Times.push_back(Best);
  }

  if (S != SystemState::BaselineBS)
    terminateCompetitors(VM, "Competitors");
  VM.shutdown();
  return Times;
}

/// Short column headers matching Table 2.
inline std::vector<std::string> macroShortNames() {
  return {"org r/w", "print def", "hierarchy", "calls",
          "implementors", "inspector", "compile", "decompile"};
}

} // namespace mst

#endif // MST_BENCH_BENCHSUPPORT_H
