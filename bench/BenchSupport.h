//===-- bench/BenchSupport.h - Shared bench harness helpers -----*- C++ -*-===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the benchmark binaries: the four system states of
/// Table 2, repetition/measurement plumbing, and output formatting.
///
//===----------------------------------------------------------------------===//

#ifndef MST_BENCH_BENCHSUPPORT_H
#define MST_BENCH_BENCHSUPPORT_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "image/Bootstrap.h"
#include "image/MacroBenchmarks.h"
#include "image/Snapshot.h"
#include "obs/Telemetry.h"
#include "obs/TraceBuffer.h"
#include "support/Format.h"
#include "support/Stats.h"
#include "vkernel/Chaos.h"
#include "vm/VirtualMachine.h"

namespace mst {

/// The number of interpreter processes used for the MS states. The
/// Firefly ran five; we use min(host CPUs, 5) but always at least two,
/// so interpretation is genuinely replicated even on a uniprocessor host
/// while avoiding heavy thread oversubscription (which would charge OS
/// context-switch noise to the benchmark's processor-time attribution).
inline unsigned msInterpreters() {
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0)
    Hw = 4;
  unsigned K = Hw < 5 ? Hw : 5;
  return K < 2 ? 2 : K;
}

/// \returns a scale factor from the MST_BENCH_SCALE environment variable
/// (default \p Dflt). Larger = longer, steadier measurements.
inline double benchScale(double Dflt) {
  if (const char *S = std::getenv("MST_BENCH_SCALE"))
    return std::atof(S);
  return Dflt;
}

/// The four system states of Table 2.
enum class SystemState {
  BaselineBS,  ///< uniprocessor interpreter, no multiprocessor support
  Ms,          ///< MS with one idle Process
  MsFourIdle,  ///< MS with four idle Processes
  MsFourBusy,  ///< MS with four busy Processes
};

inline const char *stateName(SystemState S) {
  switch (S) {
  case SystemState::BaselineBS:
    return "Baseline BS on multiprocessor";
  case SystemState::Ms:
    return "MS on multiprocessor";
  case SystemState::MsFourIdle:
    return "MS with four idle Processes";
  case SystemState::MsFourBusy:
    return "MS with four busy Processes";
  }
  return "?";
}

/// Builds the VM configuration for \p S.
inline VmConfig configFor(SystemState S) {
  if (S == SystemState::BaselineBS)
    return VmConfig::baselineBS();
  return VmConfig::multiprocessor(msInterpreters());
}

/// Telemetry/trace flags shared by the benchmark mains.
struct BenchFlags {
  bool TelemetryReport = false; ///< --telemetry: print counter summary
  std::string TraceOut;         ///< --trace-out=PATH: Chrome trace JSON
  std::string JsonOut;          ///< --json-out=PATH: machine-readable results
  std::string ImagePath;        ///< --image=PATH: boot from a prewarmed image
  bool Profile = false;         ///< --profile: run the sampling profiler
  uint32_t ProfileHz = 0;       ///< --profile-hz=N: sampling rate (0=default)
  std::string ProfileFolded;    ///< --profile-folded=PATH: collapsed stacks
};

/// The cross-state profile accumulator. Each runMacroSuite call resolves
/// the sampler's raw oop bits against its own VM's heap (bits go stale
/// with the VM) and merges the named rows here; finishBenchFlags renders
/// and exports the union.
inline ProfileReport &benchProfile() {
  static ProfileReport R;
  return R;
}

/// Folds the profiler's current raw tables into benchProfile(), resolved
/// against \p VM's heap. Call just before a bench VM shuts down — after
/// shutdown the sampled oop bits are unresolvable. No-op when the
/// profiler never ran.
inline void benchProfileFold(VirtualMachine &VM) {
  if (Profiler::enabled() || Profiler::ticks() > 0) {
    benchProfile().merge(VM.buildProfileReport());
    Profiler::reset();
  }
}

/// Shared prewarmed-image path (set by --image=PATH). When non-empty the
/// bench VMs boot by loading this snapshot instead of re-running the
/// bootstrap + macro-workload compilation for every system state.
inline std::string &benchImagePath() {
  static std::string Path;
  return Path;
}

/// Boots \p VM for a macro suite: from the prewarmed snapshot when one
/// was given (its load time lands in the `img.load.millis` histogram, so
/// every BENCH_*.json telemetry block records it), otherwise from scratch
/// via bootstrap + the macro-workload definitions. A snapshot that fails
/// verification falls back to the scratch path rather than aborting the
/// suite — the benches should still produce numbers off a stale image.
inline void bootBenchImage(VirtualMachine &VM) {
  const std::string &Img = benchImagePath();
  if (!Img.empty()) {
    std::string Error;
    if (loadSnapshot(VM, Img, Error))
      return;
    std::fprintf(stderr,
                 "cannot load prewarmed image %s: %sfalling back to "
                 "bootstrap\n",
                 Img.c_str(), Error.c_str());
  }
  bootstrapImage(VM);
  setupMacroWorkload(VM);
}

/// Parses --telemetry / --trace-out= / --json-out= / --chaos-seed= /
/// --image= and enables tracing when a trace path was given. Unknown
/// arguments abort with a usage message. A --chaos-seed (or
/// MST_CHAOS_SEED in the environment) turns on schedule chaos for the
/// whole run — for measuring how robust the numbers are to hostile
/// interleavings, not for Table 2.
inline BenchFlags parseBenchFlags(int Argc, char **Argv) {
  BenchFlags F;
  for (int I = 1; I < Argc; ++I) {
    const char *A = Argv[I];
    if (std::strcmp(A, "--telemetry") == 0) {
      F.TelemetryReport = true;
    } else if (std::strncmp(A, "--trace-out=", 12) == 0) {
      F.TraceOut = A + 12;
    } else if (std::strncmp(A, "--json-out=", 11) == 0) {
      F.JsonOut = A + 11;
    } else if (std::strncmp(A, "--image=", 8) == 0) {
      F.ImagePath = A + 8;
      benchImagePath() = F.ImagePath;
    } else if (std::strncmp(A, "--chaos-seed=", 13) == 0) {
      chaos::enableSeed(std::strtoull(A + 13, nullptr, 0));
    } else if (std::strcmp(A, "--profile") == 0) {
      F.Profile = true;
    } else if (std::strncmp(A, "--profile-hz=", 13) == 0) {
      F.Profile = true;
      F.ProfileHz =
          static_cast<uint32_t>(std::strtoul(A + 13, nullptr, 0));
    } else if (std::strncmp(A, "--profile-folded=", 17) == 0) {
      F.Profile = true;
      F.ProfileFolded = A + 17;
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s'\nusage: %s [--telemetry] "
                   "[--trace-out=PATH] [--json-out=PATH] [--image=PATH] "
                   "[--chaos-seed=N] [--profile] [--profile-hz=N] "
                   "[--profile-folded=PATH]\n",
                   A, Argv[0]);
      std::exit(2);
    }
  }
  if (!F.TraceOut.empty())
    Telemetry::setTracingEnabled(true);
  if (F.Profile)
    startVmProfiler(F.ProfileHz);
  if (!chaos::enabled())
    chaos::enableFromEnv();
  return F;
}

/// Prints the aggregate counters and pause percentiles to stdout.
inline void printTelemetrySummary(const Telemetry::Snapshot &S) {
  std::printf("--- telemetry ---\n");
  for (const auto &[Name, V] : S.Counters)
    std::printf("  %-32s %llu\n", Name.c_str(),
                static_cast<unsigned long long>(V));
  for (const auto &H : S.Histograms)
    std::printf("  %-32s n=%llu p50=%.1fus p95=%.1fus p99=%.1fus "
                "max=%.1fus\n",
                H.Name.c_str(), static_cast<unsigned long long>(H.Count),
                H.P50 / 1e3, H.P95 / 1e3, H.P99 / 1e3, H.Max / 1e3);
}

/// Finalizes the tracing/telemetry flags after the measured runs: writes
/// the Chrome trace and/or prints the counter summary.
inline void finishBenchFlags(const BenchFlags &F,
                             const Telemetry::Snapshot &S) {
  if (F.TelemetryReport)
    printTelemetrySummary(S);
  if (!F.TraceOut.empty()) {
    if (writeChromeTrace(F.TraceOut))
      std::printf("trace written to %s (open in https://ui.perfetto.dev)\n",
                  F.TraceOut.c_str());
    else
      std::fprintf(stderr, "failed to write trace to %s\n",
                   F.TraceOut.c_str());
  }
  if (F.Profile) {
    stopVmProfiler();
    const ProfileReport &R = benchProfile();
    std::printf("%s", R.render().c_str());
    if (!F.ProfileFolded.empty()) {
      if (R.writeFolded(F.ProfileFolded))
        std::printf("folded stacks written to %s (feed to flamegraph.pl)\n",
                    F.ProfileFolded.c_str());
      else
        std::fprintf(stderr, "failed to write folded stacks to %s\n",
                     F.ProfileFolded.c_str());
    }
  }
}

/// Runs all eight macro benchmarks in system state \p S.
/// \returns one TimedRun per benchmark (Table 2 column order), keeping
/// the minimum-CPU repetition. When \p SnapOut is non-null it receives a
/// registry snapshot taken before the VM (and its counters) is destroyed.
inline std::vector<TimedRun> runMacroSuite(
    SystemState S, double Scale, unsigned Repeats = 1,
    Telemetry::Snapshot *SnapOut = nullptr) {
  VirtualMachine VM(configFor(S));
  bootBenchImage(VM);
  VM.startInterpreters();

  // Competition per the paper: MS always carries one idle Process (its
  // "uniprocessor mode"); the contended states carry four idle or busy.
  switch (S) {
  case SystemState::BaselineBS:
    break;
  case SystemState::Ms:
    forkCompetitors(VM, 1, idleProcessSource(), "Competitors");
    break;
  case SystemState::MsFourIdle:
    forkCompetitors(VM, 4, idleProcessSource(), "Competitors");
    break;
  case SystemState::MsFourBusy:
    forkCompetitors(VM, 4, busyProcessSource(), "Competitors");
    break;
  }

  std::vector<TimedRun> Times;
  for (const MacroBenchmark &B : macroBenchmarks()) {
    TimedRun Best;
    for (unsigned R = 0; R < Repeats; ++R) {
      TimedRun Run = runMacroBenchmark(VM, B, Scale, 600.0);
      if (!Run.Ok) {
        std::fprintf(stderr, "benchmark '%s' failed in state '%s'\n",
                     B.Name.c_str(), stateName(S));
        for (const std::string &E : VM.errors())
          std::fprintf(stderr, "  error: %s\n", E.c_str());
        Best = Run;
        break;
      }
      // Keep the least-disturbed (minimum processor time) repetition.
      if (!Best.Ok || Run.CpuSec < Best.CpuSec)
        Best = Run;
    }
    Times.push_back(Best);
  }

  if (S != SystemState::BaselineBS)
    terminateCompetitors(VM, "Competitors");
  if (SnapOut)
    *SnapOut = Telemetry::snapshot();
  benchProfileFold(VM);
  VM.shutdown();
  return Times;
}

/// Short column headers matching Table 2.
inline std::vector<std::string> macroShortNames() {
  return {"org r/w", "print def", "hierarchy", "calls",
          "implementors", "inspector", "compile", "decompile"};
}

/// Writes one versioned machine-readable result file: per-state wall/CPU
/// seconds for every macro benchmark plus that state's telemetry snapshot
/// (lock contention, cache hit rates, scavenge pause percentiles).
/// \returns false on I/O failure.
inline bool writeBenchJson(const std::string &Path,
                           const std::string &BenchName, double Scale,
                           const std::vector<SystemState> &States,
                           const std::vector<std::vector<TimedRun>> &All,
                           const std::vector<Telemetry::Snapshot> &Snaps) {
  std::ofstream Os(Path, std::ios::binary | std::ios::trunc);
  if (!Os)
    return false;
  Os << "{\"bench\":\"" << BenchName << "\",\"scale\":" << Scale
     << ",\"interpreters\":" << msInterpreters() << ",\"states\":[";
  const auto Names = macroShortNames();
  for (size_t SI = 0; SI < States.size(); ++SI) {
    if (SI)
      Os << ',';
    Os << "{\"name\":\"" << stateName(States[SI]) << "\",\"results\":[";
    for (size_t B = 0; B < All[SI].size(); ++B) {
      const TimedRun &R = All[SI][B];
      if (B)
        Os << ',';
      Os << "{\"bench\":\"" << (B < Names.size() ? Names[B] : "?")
         << "\",\"ok\":" << (R.Ok ? "true" : "false")
         << ",\"cpu_sec\":" << R.CpuSec << ",\"wall_sec\":" << R.WallSec
         << "}";
    }
    Os << "],\"telemetry\":"
       << (SI < Snaps.size() ? Telemetry::toJson(Snaps[SI]) : "{}") << "}";
  }
  Os << "]";
  // When the sampling profiler ran, the accumulated cross-state profile
  // rides along in the versioned artifact.
  if (!benchProfile().empty())
    Os << ",\"profile\":" << benchProfile().toJson();
  Os << "}";
  return static_cast<bool>(Os);
}

} // namespace mst

#endif // MST_BENCH_BENCHSUPPORT_H
