//===-- bench/bench_scheduler.cpp - §3.1 serialized scheduling ------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3.1 scheduling argument: "the Smalltalk-80 system employs
/// a simple scheduling model ... these events are relatively infrequent,
/// so serialization through a lock on the queue is adequate."
///
/// Two workloads quantify "adequate":
///  - a yield storm: N Processes doing nothing but Processor yield, the
///    worst case for the single ready-queue lock;
///  - a semaphore ping-pong pair, the signal/wait path.
///
/// Reported: scheduling operations per second and ready-queue lock
/// contention, against the lock-acquisition count — showing the
/// serialization point is exercised constantly yet cheap, which is the
/// paper's design judgment.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

namespace {

struct Row {
  unsigned Yielders;
  double YieldsPerSec;
  uint64_t LockAcq;
  uint64_t LockContended;
};

Row measureYieldStorm(unsigned Yielders, int YieldsEach) {
  VirtualMachine VM(VmConfig::multiprocessor(msInterpreters()));
  bootstrapImage(VM);
  VM.startInterpreters();
  unsigned Sig = VM.createHostSignal();

  Stopwatch Watch;
  for (unsigned P = 0; P < Yielders; ++P)
    VM.forkDoIt("1 to: " + std::to_string(YieldsEach) +
                    " do: [:i | Processor yield]. nil hostSignal: " +
                    std::to_string(Sig),
                5, "yielder");
  bool Ok = VM.waitHostSignal(Sig, Yielders, 600.0);
  double Sec = Watch.seconds();
  Row R{};
  R.Yielders = Yielders;
  R.YieldsPerSec = Ok ? Yielders * static_cast<double>(YieldsEach) / Sec
                      : -1.0;
  R.LockAcq = VM.scheduler().lock().acquisitions();
  R.LockContended = VM.scheduler().lock().contendedAcquisitions();
  benchProfileFold(VM);
  VM.shutdown();
  return R;
}

double measurePingPong(int Rounds) {
  VirtualMachine VM(VmConfig::multiprocessor(msInterpreters()));
  bootstrapImage(VM);
  VM.startInterpreters();
  unsigned Sig = VM.createHostSignal();
  VM.compileAndRun("Smalltalk at: #Ping put: Semaphore new. Smalltalk "
                   "at: #Pong put: Semaphore new");
  Stopwatch Watch;
  VM.forkDoIt("| ping pong | ping := Smalltalk at: #Ping. pong := "
              "Smalltalk at: #Pong. 1 to: " + std::to_string(Rounds) +
                  " do: [:i | ping signal. pong wait]. nil hostSignal: " +
                  std::to_string(Sig),
              5, "pinger");
  VM.forkDoIt("| ping pong | ping := Smalltalk at: #Ping. pong := "
              "Smalltalk at: #Pong. 1 to: " + std::to_string(Rounds) +
                  " do: [:i | ping wait. pong signal]. nil hostSignal: " +
                  std::to_string(Sig),
              5, "ponger");
  bool Ok = VM.waitHostSignal(Sig, 2, 600.0);
  double Sec = Watch.seconds();
  benchProfileFold(VM);
  VM.shutdown();
  return Ok ? 2.0 * Rounds / Sec : -1.0;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  int YieldsEach = static_cast<int>(20000 * benchScale(1.0));
  std::printf("Scheduling: the serialized single ready queue under its "
              "worst cases (paper §3.1)\n\n");

  TextTable T;
  T.setHeader({"yielding Processes", "yields/sec", "sched lock acq",
               "contended"});
  for (unsigned N : {1u, 2u, 4u, 8u}) {
    Row R = measureYieldStorm(N, YieldsEach);
    T.addRow({std::to_string(R.Yielders),
              R.YieldsPerSec < 0 ? "FAIL"
                                 : formatDouble(R.YieldsPerSec, 0),
              std::to_string(R.LockAcq),
              std::to_string(R.LockContended)});
  }
  std::printf("%s\n", T.render().c_str());

  double PingPong = measurePingPong(YieldsEach / 2);
  std::printf("semaphore ping-pong: %.0f signal+wait pairs/sec\n\n",
              PingPong);
  std::printf("Expected: throughput in the hundreds of thousands per "
              "second — 'these events are relatively infrequent, so "
              "serialization through a lock on the queue is adequate'.\n");
  finishBenchFlags(Flags, Telemetry::snapshot());
  return 0;
}
