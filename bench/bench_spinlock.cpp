//===-- bench/bench_spinlock.cpp - §3.1 spin-lock microbenchmarks ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Microbenchmarks of the V-style spin lock (test-and-set with Delay
/// backoff, paper §3.1) and the Send/Receive/Reply IPC channel: the cost
/// of the serialization strategy itself, and of the baseline-BS mode in
/// which every lock is compiled to a no-op branch.
///
//===----------------------------------------------------------------------===//

#include <benchmark/benchmark.h>

#include "vkernel/IpcChannel.h"
#include "vkernel/SpinLock.h"

using namespace mst;

namespace {

void BM_SpinLockUncontended(benchmark::State &State) {
  SpinLock Lock(true);
  for (auto _ : State) {
    Lock.lock();
    benchmark::DoNotOptimize(&Lock);
    Lock.unlock();
  }
}
BENCHMARK(BM_SpinLockUncontended);

void BM_SpinLockDisabled(benchmark::State &State) {
  // Baseline-BS mode: the lock is present but compiled to a branch.
  SpinLock Lock(false);
  for (auto _ : State) {
    Lock.lock();
    benchmark::DoNotOptimize(&Lock);
    Lock.unlock();
  }
}
BENCHMARK(BM_SpinLockDisabled);

void BM_SpinLockContended(benchmark::State &State) {
  static SpinLock Lock(true);
  static uint64_t Shared = 0;
  for (auto _ : State) {
    Lock.lock();
    ++Shared;
    benchmark::DoNotOptimize(Shared);
    Lock.unlock();
  }
  if (State.thread_index() == 0)
    State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SpinLockContended)->Threads(1)->Threads(2)->Threads(4);

void BM_RememberedSetStyleCheck(benchmark::State &State) {
  // The write barrier's fast path: flag test without the lock.
  SpinLock Lock(true);
  uint64_t Flagged = 1;
  for (auto _ : State) {
    if (!Flagged) {
      Lock.lock();
      Flagged = 1;
      Lock.unlock();
    }
    benchmark::DoNotOptimize(Flagged);
  }
}
BENCHMARK(BM_RememberedSetStyleCheck);

void BM_IpcRoundTrip(benchmark::State &State) {
  // One server thread replies to every request: the Send/Receive/Reply
  // cycle the scavenge rendezvous is built from.
  IpcChannel Chan;
  std::atomic<bool> Stop{false};
  std::thread Server([&] {
    uint64_t Req;
    for (;;) {
      IpcChannel::MessageHandle H = Chan.receive(Req);
      Chan.reply(H, Req == UINT64_MAX ? 0 : Req + 1);
      if (Req == UINT64_MAX)
        return;
    }
  });
  uint64_t I = 0;
  for (auto _ : State) {
    uint64_t R = Chan.send(I);
    benchmark::DoNotOptimize(R);
    ++I;
  }
  Chan.send(UINT64_MAX);
  Server.join();
  (void)Stop;
}
BENCHMARK(BM_IpcRoundTrip);

} // namespace

BENCHMARK_MAIN();
