//===-- bench/bench_scavenge.cpp - §3.1 scavenging behaviour --------------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the paper's §3.1 Generation Scavenging claims:
///  - scavenging costs about 3% of available processor time;
///  - scavenge frequency is roughly r/s (allocation rate over eden
///    size): "If scavenging occurs every t seconds ... with an
///    allocation space of size s, then a k-processor system should
///    require scavenging no more often than every t seconds if the
///    allocation space is of size k*s";
///  - scavenge time is proportional to surviving data, not to garbage.
///
/// Sweep: eden size s from 128 KB up, fixed workload. Expected shape:
/// scavenge count halves as s doubles; GC share of wall-clock stays in
/// the low single digits; pause time tracks survivors.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

namespace {

struct Row {
  size_t EdenKb;
  uint64_t Scavenges;
  double TotalSec;
  double GcSec;
  double AvgPauseMs;
  uint64_t BytesCopied;
};

Row measure(size_t EdenBytes, int N) {
  VmConfig C = VmConfig::multiprocessor(1);
  C.Memory.EdenBytes = EdenBytes;
  C.Memory.SurvivorBytes = EdenBytes / 2;
  VirtualMachine VM(C);
  bootstrapImage(VM);
  VM.startInterpreters();

  unsigned Sig = VM.createHostSignal();
  Stopwatch Watch;
  // A mixed allocator: mostly garbage (dies young — the generational
  // hypothesis), with a rolling survivor window.
  Oop P = VM.forkDoIt(
      "| keep | keep := Array new: 64. 1 to: " + std::to_string(N) +
          " do: [:i | keep at: i \\\\ 64 + 1 put: (Array new: 16). "
          "String new: 32. Array new: 8]. nil hostSignal: " +
          std::to_string(Sig),
      5, "churn");
  double Total = -1.0;
  if (!P.isNull() && VM.waitHostSignal(Sig, 1, 600.0))
    Total = Watch.seconds();

  ScavengeStats S = VM.memory().statsSnapshot();
  benchProfileFold(VM);
  VM.shutdown();
  Row R{};
  R.EdenKb = EdenBytes / 1024;
  R.Scavenges = S.Scavenges;
  R.TotalSec = Total;
  R.GcSec = S.TotalPauseSec;
  R.AvgPauseMs =
      S.Scavenges ? S.TotalPauseSec / static_cast<double>(S.Scavenges) *
                        1000.0
                  : 0.0;
  R.BytesCopied = S.BytesCopied + S.BytesTenured;
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  int N = static_cast<int>(200000 * benchScale(1.0));
  std::printf("Generation Scavenging: eden-size sweep (paper §3.1: "
              "frequency ~ r/s; overhead ~3%%)\n\n");

  TextTable T;
  T.setHeader({"eden", "scavenges", "total (s)", "GC (s)", "GC share",
               "avg pause (ms)", "bytes copied"});
  for (size_t Kb : {128, 256, 512, 1024, 2048, 4096}) {
    Row R = measure(Kb * 1024, N);
    double Share = R.TotalSec > 0 ? R.GcSec / R.TotalSec * 100.0 : 0.0;
    T.addRow({std::to_string(R.EdenKb) + " KB",
              std::to_string(R.Scavenges), formatDouble(R.TotalSec, 3),
              formatDouble(R.GcSec, 4), formatDouble(Share, 2) + "%",
              formatDouble(R.AvgPauseMs, 3),
              std::to_string(R.BytesCopied)});
  }
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected: doubling s roughly halves the scavenge count "
              "(frequency ~ r/s); the GC share stays small; pause time "
              "tracks survivors, not garbage.\n");
  finishBenchFlags(Flags, Telemetry::snapshot());
  return 0;
}
