//===-- bench/bench_free_contexts.cpp - §3.2 free-context ablation --------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §3.2 free-context-list result: "Profiling of an
/// earlier version of MS revealed that serialization of access to the
/// free context list caused a bottleneck. ... Replication of the free
/// context list yielded a reduction in the worst-case overhead from 160%
/// to 65%."
///
/// Workload: a deeply recursive method (every activation takes and
/// returns a context through the free list) run while four busy Processes
/// churn their own activations. Compared: one spin-locked shared list vs
/// one list per interpreter.
///
/// Expected shape: contended overhead with the Shared list is much larger
/// than with the Replicated list; solo times are comparable.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

namespace {

double timedFib(VirtualMachine &VM, int N) {
  TimedRun R = runTimedWorkload(
      VM, "BenchmarkDummy new fib: " + std::to_string(N), 600.0);
  return R.Ok ? R.CpuSec : -1.0;
}

struct Result {
  double Solo;
  double Contended;
  uint64_t Reuses;
};

Result measure(FreeContextKind Kind, int FibN) {
  VmConfig C = VmConfig::multiprocessor(msInterpreters());
  C.FreeCtxKind = Kind;
  VirtualMachine VM(C);
  bootstrapImage(VM);
  setupMacroWorkload(VM);
  addMethod(VM, VM.model().globalAt("BenchmarkDummy"), "benchmarks",
            "fib: n n < 2 ifTrue: [^1]. ^(self fib: n - 1) + (self fib: "
            "n - 2)");
  VM.startInterpreters();

  Result R{};
  R.Solo = timedFib(VM, FibN);
  // Four busy Processes: each runs its own recursive churn, contending
  // for the free context list on every activation.
  forkCompetitors(VM, 4,
                  "[true] whileTrue: [BenchmarkDummy new fib: 12]",
                  "FibCompetitors");
  R.Contended = timedFib(VM, FibN);
  terminateCompetitors(VM, "FibCompetitors");
  R.Reuses = VM.contextPool().reuses();
  benchProfileFold(VM);
  VM.shutdown();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  int FibN = static_cast<int>(24 + benchScale(0.0));
  std::printf("Free context list: serialization vs replication "
              "(paper §3.2: worst-case overhead 160%% -> 65%%)\n\n");

  Result Shared = measure(FreeContextKind::Shared, FibN);
  Result Repl = measure(FreeContextKind::Replicated, FibN);

  TextTable T;
  T.setHeader({"free-context policy", "solo (s)", "4 busy (s)",
               "overhead", "list reuses"});
  auto Row = [&](const char *Name, const Result &R) {
    double Over = R.Solo > 0 ? (R.Contended / R.Solo - 1.0) * 100.0 : 0.0;
    T.addRow({Name, formatDouble(R.Solo, 3), formatDouble(R.Contended, 3),
              formatDouble(Over, 1) + "%", std::to_string(R.Reuses)});
  };
  Row("Shared (spin-locked)", Shared);
  Row("Replicated (per-interpreter)", Repl);
  std::printf("%s\n", T.render().c_str());

  double SharedOver =
      Shared.Solo > 0 ? Shared.Contended / Shared.Solo - 1.0 : 0.0;
  double ReplOver = Repl.Solo > 0 ? Repl.Contended / Repl.Solo - 1.0 : 0.0;
  std::printf("Replication reduced contended overhead from %.0f%% to "
              "%.0f%% (paper: 160%% -> 65%%).\n",
              SharedOver * 100.0, ReplOver * 100.0);
  finishBenchFlags(Flags, Telemetry::snapshot());
  return 0;
}
