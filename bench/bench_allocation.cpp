//===-- bench/bench_allocation.cpp - §4 allocation-contention ablation ----===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests the paper's §4 suspicion: "we suspect that a significant amount
/// of the overhead is due to contention in storage allocation, in which
/// case replication of the new-object space should have significant
/// benefits."
///
/// Workload: an allocation storm run solo and against four allocating
/// competitors, with the serialized (spin-locked bump pointer) allocator
/// vs per-interpreter allocation buffers (the replicated new space).
///
/// Expected shape: the serialized allocator's contended overhead exceeds
/// the TLAB allocator's; allocation-lock contention counts confirm why.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

namespace {

double timedAlloc(VirtualMachine &VM, int N) {
  TimedRun R = runTimedWorkload(
      VM,
      "1 to: " + std::to_string(N) +
          " do: [:i | Array new: 8. String new: 16]",
      600.0);
  return R.Ok ? R.CpuSec : -1.0;
}

struct Result {
  double Solo = -1.0;
  double Contended = -1.0;
  uint64_t LockAcq = 0;
  uint64_t LockContended = 0;
  uint64_t Scavenges = 0;
};

Result measure(AllocatorKind Kind, int N) {
  VmConfig C = VmConfig::multiprocessor(msInterpreters());
  C.Memory.Allocator = Kind;
  VirtualMachine VM(C);
  bootstrapImage(VM);
  setupMacroWorkload(VM);
  VM.startInterpreters();

  Result R;
  R.Solo = timedAlloc(VM, N);
  forkCompetitors(VM, 4, "[true] whileTrue: [Array new: 8]",
                  "AllocCompetitors");
  R.Contended = timedAlloc(VM, N);
  terminateCompetitors(VM, "AllocCompetitors");
  R.LockAcq = VM.memory().allocationLock().acquisitions();
  R.LockContended = VM.memory().allocationLock().contendedAcquisitions();
  R.Scavenges = VM.memory().statsSnapshot().Scavenges;
  benchProfileFold(VM);
  VM.shutdown();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  int N = static_cast<int>(100000 * benchScale(1.0));
  std::printf("Storage allocation: serialized bump pointer vs replicated "
              "new space / TLABs (paper §4)\n\n");

  Result Serial = measure(AllocatorKind::Serialized, N);
  Result Tlab = measure(AllocatorKind::Tlab, N);

  TextTable T;
  T.setHeader({"allocator", "solo (s)", "4 busy (s)", "overhead",
               "lock acq", "contended", "scavenges"});
  auto Row = [&](const char *Name, const Result &R) {
    double Over =
        R.Solo > 0 ? (R.Contended / R.Solo - 1.0) * 100.0 : 0.0;
    T.addRow({Name, formatDouble(R.Solo, 3), formatDouble(R.Contended, 3),
              formatDouble(Over, 1) + "%", std::to_string(R.LockAcq),
              std::to_string(R.LockContended),
              std::to_string(R.Scavenges)});
  };
  Row("Serialized (spin lock)", Serial);
  Row("Tlab (replicated new space)", Tlab);
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected: replicating the new-object space reduces "
              "contended allocation overhead.\n");
  finishBenchFlags(Flags, Telemetry::snapshot());
  return 0;
}
