//===-- bench/bench_prewarm.cpp - Build a prewarmed benchmark image -------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bootstraps the kernel image, compiles the Table 2 macro-workload
/// definitions, and saves the result as a crash-consistent snapshot.
/// The bench binaries then boot every system state from this image via
/// `--image=PATH`, so a multi-state suite pays the bootstrap + workload
/// compilation cost once instead of per state, and the per-state
/// `img.load.millis` histogram in the BENCH_*.json telemetry records how
/// long image startup actually takes.
///
///   ./bench/bench_prewarm bench/results/prewarmed.image
///   ./bench/bench_table2 --image=bench/results/prewarmed.image ...
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

int main(int argc, char **argv) {
  std::string Out = "prewarmed.image";
  if (argc > 2 || (argc == 2 && argv[1][0] == '-')) {
    std::fprintf(stderr, "usage: %s [OUT_PATH]\n", argv[0]);
    return 2;
  }
  if (argc == 2)
    Out = argv[1];

  // The image content is configuration-independent (objects, roots,
  // symbols) — one prewarmed snapshot serves baseline-BS and every MS
  // worker count alike.
  VirtualMachine VM(VmConfig::multiprocessor(1));
  double T0 = Telemetry::nowNs() / 1e9;
  bootstrapImage(VM);
  setupMacroWorkload(VM);
  double T1 = Telemetry::nowNs() / 1e9;

  std::string Error;
  if (!saveSnapshot(VM, Out, Error)) {
    std::fprintf(stderr, "cannot save prewarmed image: %s\n", Error.c_str());
    VM.shutdown();
    return 1;
  }
  double T2 = Telemetry::nowNs() / 1e9;
  std::printf("prewarmed image saved to %s (bootstrap+workload %.2fs, "
              "snapshot %.2fs)\n",
              Out.c_str(), T1 - T0, T2 - T1);
  VM.shutdown();
  return 0;
}
