//===-- bench/bench_method_cache.cpp - §3.2 method-cache ablation ---------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces the paper's §3.2 method-cache experience: "We originally
/// applied a serialization strategy for the method cache, using a
/// two-level locking scheme to allow multiple readers. When the system
/// was finally up and running, however, we found that contention for the
/// lock was causing it to run much too slowly. Replicating the cache on a
/// per-processor basis solved the problem."
///
/// Workload: a send-storm (every send consults the cache) run solo and
/// against four send-heavy competitors, for both cache organizations,
/// over 1..k interpreters.
///
/// Expected shape: GlobalLocked degrades sharply as competitors are
/// added; Replicated stays near its solo time.
///
//===----------------------------------------------------------------------===//

#include "BenchSupport.h"

using namespace mst;

namespace {

const char *SendStorm =
    "| p | p := Point x: 1 y: 2. 1 to: %N% do: [:i | p printString. i "
    "printString. p x. p y. (p + p) x]";

std::string stormSource(int N) {
  std::string S = SendStorm;
  size_t Pos = S.find("%N%");
  S.replace(Pos, 3, std::to_string(N));
  return S;
}

double timedStorm(VirtualMachine &VM, int N) {
  TimedRun R = runTimedWorkload(VM, stormSource(N), 600.0);
  return R.Ok ? R.CpuSec : -1.0;
}

struct Result {
  double Solo = -1.0;
  double Contended = -1.0;
  uint64_t Hits = 0;
  uint64_t Misses = 0;
};

Result measure(MethodCacheKind Kind, int N) {
  VmConfig C = VmConfig::multiprocessor(msInterpreters());
  C.CacheKind = Kind;
  VirtualMachine VM(C);
  bootstrapImage(VM);
  setupMacroWorkload(VM);
  VM.startInterpreters();

  Result R;
  R.Solo = timedStorm(VM, N);
  forkCompetitors(VM, 4,
                  "[true] whileTrue: [(Point x: 5 y: 6) printString]",
                  "StormCompetitors");
  R.Contended = timedStorm(VM, N);
  terminateCompetitors(VM, "StormCompetitors");
  R.Hits = VM.cache().hits();
  R.Misses = VM.cache().misses();
  benchProfileFold(VM);
  VM.shutdown();
  return R;
}

} // namespace

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  int N = static_cast<int>(30000 * benchScale(1.0));
  std::printf("Method lookup cache: two-level-locked global cache vs "
              "per-interpreter replication (paper §3.2)\n\n");

  Result Locked = measure(MethodCacheKind::GlobalLocked, N);
  Result Repl = measure(MethodCacheKind::Replicated, N);

  TextTable T;
  T.setHeader({"cache policy", "solo (s)", "4 busy (s)", "overhead",
               "hit rate"});
  auto Row = [&](const char *Name, const Result &R) {
    double Over =
        R.Solo > 0 ? (R.Contended / R.Solo - 1.0) * 100.0 : 0.0;
    double HitRate = R.Hits + R.Misses
                         ? 100.0 * static_cast<double>(R.Hits) /
                               static_cast<double>(R.Hits + R.Misses)
                         : 0.0;
    T.addRow({Name, formatDouble(R.Solo, 3), formatDouble(R.Contended, 3),
              formatDouble(Over, 1) + "%",
              formatDouble(HitRate, 1) + "%"});
  };
  Row("GlobalLocked (two-level lock)", Locked);
  Row("Replicated (per-interpreter)", Repl);
  std::printf("%s\n", T.render().c_str());
  std::printf("Expected: the locked cache runs 'much too slowly' under "
              "competition; replication solves it.\n");
  finishBenchFlags(Flags, Telemetry::snapshot());
  return 0;
}
