//===-- bench/bench_figure2.cpp - Figure 2: normalized overhead -----------===//
//
// Part of the Multiprocessor Smalltalk reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Regenerates **Figure 2: Preliminary overhead measurements —
/// normalized**: the Table 2 data with every benchmark's time normalized
/// to the baseline-BS time for that benchmark, rendered as ASCII bars.
///
/// Expected shape: bars grow monotonically from baseline (1.00) through
/// MS, MS+idle, to MS+busy for most benchmarks.
///
//===----------------------------------------------------------------------===//

#include <algorithm>

#include "BenchSupport.h"

using namespace mst;

int main(int argc, char **argv) {
  BenchFlags Flags = parseBenchFlags(argc, argv);
  double Scale = benchScale(3.0);

  std::printf("Figure 2: Preliminary overhead measurements - normalized\n");
  std::printf("workload scale %.1f, %u interpreters for MS states\n\n",
              Scale, msInterpreters());

  const std::vector<SystemState> States = {
      SystemState::BaselineBS, SystemState::Ms, SystemState::MsFourIdle,
      SystemState::MsFourBusy};

  std::vector<std::vector<TimedRun>> All;
  std::vector<Telemetry::Snapshot> Snaps(States.size());
  for (size_t SI = 0; SI < States.size(); ++SI)
    All.push_back(runMacroSuite(States[SI], Scale, 2, &Snaps[SI]));

  const auto Names = macroShortNames();
  auto Cpu = [&](size_t SI, size_t B) {
    return All[SI][B].Ok ? All[SI][B].CpuSec : -1.0;
  };
  double MaxRatio = 1.0;
  for (size_t SI = 1; SI < 4; ++SI)
    for (size_t B = 0; B < Names.size(); ++B)
      if (Cpu(0, B) > 0 && Cpu(SI, B) > 0)
        MaxRatio = std::max(MaxRatio, Cpu(SI, B) / Cpu(0, B));

  for (size_t B = 0; B < Names.size(); ++B) {
    std::printf("%s\n", Names[B].c_str());
    for (size_t SI = 0; SI < 4; ++SI) {
      double Ratio =
          (Cpu(0, B) > 0 && Cpu(SI, B) > 0) ? Cpu(SI, B) / Cpu(0, B) : 0.0;
      std::printf("  %-30s %5.2f |%s\n", stateName(States[SI]), Ratio,
                  asciiBar(Ratio, MaxRatio, 48).c_str());
    }
    std::printf("\n");
  }
  std::printf("Processor time normalized to the baseline BS time for "
              "each benchmark (1.00).\n");

  if (!Flags.JsonOut.empty() &&
      !writeBenchJson(Flags.JsonOut, "figure2", Scale, States, All, Snaps))
    std::fprintf(stderr, "failed to write %s\n", Flags.JsonOut.c_str());
  finishBenchFlags(Flags, Snaps.back());
  return 0;
}
